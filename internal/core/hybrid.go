package core

import (
	"fmt"
	"sync/atomic"

	"semholo/internal/avatar"
	"semholo/internal/body"
	"semholo/internal/capture"
	"semholo/internal/compress"
	"semholo/internal/compress/dracogo"
	"semholo/internal/gaze"
	"semholo/internal/geom"
	"semholo/internal/mesh"
	"semholo/internal/metrics"
	"semholo/internal/transport"
)

// HybridEncoder implements the foveated hybrid scheme of §3.1: the
// region around the viewer's gaze gets the compressed ground-truth mesh
// (full quality), while the periphery travels as keypoints only and is
// reconstructed with limited refinement at the receiver. The gaze anchor
// arrives from the receiver over the control channel (the Sender runtime
// wires it through SetGazeAnchor); the foveal radius is the
// bandwidth-versus-reconstruction-cost trade-off knob of the ablation.
type HybridEncoder struct {
	Keypoint *KeypointEncoder
	Selector gaze.FovealSelector
	// MeshOptions tunes foveal submesh compression.
	MeshOptions dracogo.Options

	// anchor is written by the control-plane goroutine (gaze reports
	// arriving over the session) while Encode reads it from the pipeline
	// goroutine, so it must be an atomic swap, not a plain field; nil
	// means no gaze report has arrived yet.
	anchor atomic.Pointer[geom.Vec3]
}

// SetGazeAnchor updates the world-space point the remote viewer is
// looking at (from receiver gaze reports). Safe to call concurrently
// with Encode.
func (e *HybridEncoder) SetGazeAnchor(p geom.Vec3) {
	e.anchor.Store(&p)
}

// Mode implements Encoder.
func (e *HybridEncoder) Mode() Mode { return ModeHybrid }

// Encode implements Encoder.
func (e *HybridEncoder) Encode(c capture.Capture) (EncodedFrame, error) {
	if e.Keypoint == nil {
		return EncodedFrame{}, fmt.Errorf("core: hybrid encoder missing keypoint encoder")
	}
	kp, err := e.Keypoint.Encode(c)
	if err != nil {
		return EncodedFrame{}, err
	}
	// Strip EndOfFrame from the keypoint payloads; the foveal mesh
	// closes the frame.
	for i := range kp.Channels {
		kp.Channels[i].Flags &^= transport.FlagEndOfFrame
	}
	out := EncodedFrame{Channels: kp.Channels}

	foveal := e.fovealSubmesh(c.Mesh)
	var payload []byte
	if foveal != nil && len(foveal.Faces) > 0 {
		payload = dracogo.EncodeMesh(foveal, e.MeshOptions)
	}
	out.Channels = append(out.Channels, ChannelPayload{
		Channel: ChanFovealMesh,
		Flags:   transport.FlagKeyframe | transport.FlagCompressed | transport.FlagEndOfFrame,
		Payload: payload, // empty payload = no foveal region this frame
	})
	return out, nil
}

// fovealSubmesh extracts the faces of m inside the foveal region.
func (e *HybridEncoder) fovealSubmesh(m *mesh.Mesh) *mesh.Mesh {
	anchor := e.anchor.Load()
	if m == nil || anchor == nil {
		return nil
	}
	centroids := make([]geom.Vec3, len(m.Faces))
	for i := range m.Faces {
		centroids[i] = m.FaceCentroid(i)
	}
	fovealFaces, _ := e.Selector.SplitMesh(centroids, *anchor)
	if len(fovealFaces) == 0 {
		return nil
	}
	sub := &mesh.Mesh{Vertices: append([]geom.Vec3(nil), m.Vertices...)}
	for _, fi := range fovealFaces {
		sub.Faces = append(sub.Faces, m.Faces[fi])
	}
	sub.CompactVertices()
	return sub
}

// HybridDecoder reconstructs the periphery from keypoints at a reduced
// resolution and grafts the received foveal mesh over it: peripheral
// faces falling inside the foveal region are dropped, then the foveal
// patch is merged. The seam between the two parts is the integration
// challenge §3.1 leaves open; the decoder makes it measurable rather
// than hiding it.
type HybridDecoder struct {
	Model *body.Model
	Codec compress.Codec
	// PeripheralResolution is the keypoint-reconstruction resolution for
	// the periphery (deliberately low; that is the point of the hybrid).
	PeripheralResolution int
	Selector             gaze.FovealSelector
	// Workers bounds peripheral-reconstruction parallelism (0 =
	// GOMAXPROCS, 1 = serial); output is identical at any setting.
	Workers int
	// WarmStart enables temporal-coherence peripheral reconstruction
	// (byte-identical output, see avatar.Reconstructor).
	WarmStart bool
	// Cache, when non-nil, serves repeated (quantized) poses from a mesh
	// LRU before peripheral reconstruction runs.
	Cache *avatar.MeshCache
	// Counters, when non-nil, accumulates cache and warm-start telemetry.
	Counters *metrics.ReconCounters
	// FieldStats, when non-nil, accumulates SDF field-evaluation telemetry.
	FieldStats *metrics.FieldCounters
	// Unpruned disables the capsule culling grid (ablation knob; output is
	// byte-identical either way).
	Unpruned bool

	rec *avatar.Reconstructor
	// anchor is written from the control/input plane while Decode reads
	// it from the pipeline goroutine; see HybridEncoder.anchor.
	anchor atomic.Pointer[geom.Vec3]
}

// SetGazeAnchor mirrors the encoder-side anchor (receivers know their
// own gaze). Safe to call concurrently with Decode.
func (d *HybridDecoder) SetGazeAnchor(p geom.Vec3) {
	d.anchor.Store(&p)
}

// SetWorkers rebinds the parallelism bound between frames — the decode
// service sets each frame's pool grant here before decoding. Not safe
// concurrently with Decode (callers serialize per stream).
func (d *HybridDecoder) SetWorkers(n int) { d.Workers = n }

// ResetState implements StateResetter: drop warm-start peripheral
// reconstruction state so the next frame decodes as a cold start.
func (d *HybridDecoder) ResetState() {
	if d.rec != nil {
		d.rec.ResetWarmState()
	}
}

// Mode implements Decoder.
func (d *HybridDecoder) Mode() Mode { return ModeHybrid }

// Decode implements Decoder.
func (d *HybridDecoder) Decode(channels []transport.Frame) (FrameData, error) {
	var params *body.Params
	var foveal *mesh.Mesh
	for _, f := range channels {
		switch f.Channel {
		case ChanKeypointData:
			raw := f.Payload
			if f.Flags&transport.FlagCompressed != 0 {
				dec, err := d.Codec.Decode(f.Payload)
				if err != nil {
					return FrameData{}, fmt.Errorf("core: hybrid pose decompress: %w", err)
				}
				raw = dec
			}
			p, err := body.UnmarshalParams(raw)
			if err != nil {
				return FrameData{}, fmt.Errorf("core: hybrid pose: %w", err)
			}
			params = p
		case ChanFovealMesh:
			if len(f.Payload) == 0 {
				continue // no foveal region this frame
			}
			m, err := dracogo.DecodeMesh(f.Payload)
			if err != nil {
				return FrameData{}, fmt.Errorf("core: foveal mesh: %w", err)
			}
			foveal = m
		case ChanTextureData:
			// Texture riding along with the keypoint payloads; ignored
			// here (the session runtime exposes it via KeypointDecoder
			// when texturing is on).
		default:
			return FrameData{}, errUnexpectedChannel(ModeHybrid, f.Channel)
		}
	}
	if params == nil {
		return FrameData{}, fmt.Errorf("core: hybrid decoder got no pose payload")
	}
	res := d.PeripheralResolution
	if res <= 0 {
		res = 48
	}
	if d.rec == nil || d.rec.Model != d.Model {
		d.rec = &avatar.Reconstructor{Model: d.Model}
	}
	d.rec.Resolution = res
	d.rec.Workers = d.Workers
	d.rec.WarmStart = d.WarmStart
	d.rec.Cache = d.Cache
	d.rec.Counters = d.Counters
	d.rec.FieldStats = d.FieldStats
	d.rec.Unpruned = d.Unpruned
	peripheral := d.rec.Reconstruct(params)

	merged := peripheral
	anchor := d.anchor.Load()
	if foveal != nil && anchor != nil {
		// Drop peripheral faces inside the fovea, then graft the patch.
		kept := &mesh.Mesh{Vertices: peripheral.Vertices}
		for i, face := range peripheral.Faces {
			if !d.Selector.InFovea(peripheral.FaceCentroid(i), *anchor) {
				kept.Faces = append(kept.Faces, face)
			}
		}
		kept.CompactVertices()
		kept.Merge(foveal)
		merged = kept
	} else if foveal != nil {
		peripheral.Merge(foveal)
	}
	return FrameData{Params: params, Mesh: merged}, nil
}
