package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"semholo/internal/transport"
)

// Relay is the multi-party edge component the paper's two-site Figure 1
// elides: each participant holds one session to the relay, which
// forwards every semantic frame to all other participants (an SFU —
// semantic forwarding unit, not a mixer: payloads are opaque, so the
// relay is mode-agnostic and adds no reconstruction latency). Control
// frames (gaze, bandwidth) are forwarded too, so foveated encoding and
// rate adaptation work across the relay.
//
// Frames fan out with the originating participant's name prepended on a
// dedicated control line during attach, letting receivers demultiplex
// participants by channel block (each participant's channels are offset
// by ParticipantChannelStride).
//
// Lifecycle: every Attach starts one managed pump goroutine. A pump
// exits when its session errors, its peer closes, the peer is Detached,
// or the relay's context is canceled; Close detaches every peer and
// joins every pump before returning, so a relay can never leak
// goroutines. One participant failing detaches only that participant —
// an SFU must not tear down the conference for one dropped caller —
// but the first abnormal pump error is recorded and reported by Close,
// errgroup-style.
type Relay struct {
	ctx       context.Context
	cancel    context.CancelFunc
	stopWatch func() bool

	mu      sync.Mutex
	peers   map[string]*relayPeer
	nextIdx int
	closed  bool

	wg      sync.WaitGroup
	errOnce sync.Once
	err     error
}

// ParticipantChannelStride separates participants' channel spaces when
// relayed: participant i's channel c arrives as c + i*stride.
const ParticipantChannelStride uint16 = 1000

type relayPeer struct {
	name string
	idx  int
	sess *transport.Session
	// done closes when the peer's pump goroutine has fully exited —
	// what Detach and Close join on.
	done chan struct{}
}

// NewRelay builds an empty relay with a background lifecycle (shut it
// down with Close).
func NewRelay() *Relay { return NewRelayContext(context.Background()) }

// NewRelayContext builds an empty relay whose lifetime is bounded by
// ctx: cancellation detaches every participant and stops every pump, as
// Close does.
func NewRelayContext(ctx context.Context) *Relay {
	ctx, cancel := context.WithCancel(ctx)
	r := &Relay{ctx: ctx, cancel: cancel, peers: map[string]*relayPeer{}}
	// On cancellation — ours via Close, or the parent's — force every
	// pump out of its blocking Recv by closing the peer sessions.
	r.stopWatch = context.AfterFunc(ctx, r.closeAllSessions)
	return r
}

// Attach registers a session under the participant's name and starts
// forwarding its frames to everyone else. It returns the participant's
// channel-block index. Forwarding stops when the session errors or
// closes, on Detach, or when the relay shuts down; the peer is then
// detached and its pump joined.
func (r *Relay) Attach(name string, sess *transport.Session) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, fmt.Errorf("core: relay is closed")
	}
	if _, dup := r.peers[name]; dup {
		r.mu.Unlock()
		return 0, fmt.Errorf("core: relay already has participant %q", name)
	}
	p := &relayPeer{name: name, idx: r.nextIdx, sess: sess, done: make(chan struct{})}
	r.nextIdx++
	r.peers[name] = p
	r.wg.Add(1)
	r.mu.Unlock()

	go r.pump(p)
	return p.idx, nil
}

// Peers returns the current participant names.
func (r *Relay) Peers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.peers))
	for n := range r.peers {
		names = append(names, n)
	}
	return names
}

func (r *Relay) pump(p *relayPeer) {
	defer r.wg.Done()
	defer close(p.done)
	defer r.detach(p.name)
	base := uint16(p.idx) * ParticipantChannelStride
	for {
		f, err := p.sess.Recv()
		if err != nil {
			if !benignSessionError(err) {
				r.errOnce.Do(func() {
					r.err = fmt.Errorf("core: relay participant %q: %w", p.name, err)
				})
			}
			return
		}
		if f.Type == transport.TypeClose {
			return
		}
		// Re-home the channel into the sender's block and fan out.
		out := f.Clone()
		out.Channel += base
		r.broadcast(p.name, out)
	}
}

// benignSessionError reports errors that mean "the peer or the relay
// went away on purpose" — the expected ends of a pump's life.
func benignSessionError(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, context.Canceled)
}

func (r *Relay) broadcast(from string, f transport.Frame) {
	r.mu.Lock()
	targets := make([]*relayPeer, 0, len(r.peers))
	for name, p := range r.peers {
		if name != from {
			targets = append(targets, p)
		}
	}
	r.mu.Unlock()
	for _, p := range targets {
		var err error
		switch f.Type {
		case transport.TypeSemantic:
			err = p.sess.Send(f.Channel, f.Flags, f.Payload)
		case transport.TypeControl:
			err = p.sess.SendControl(f.Payload)
		}
		if err != nil {
			// Broken peer: let its own pump detach it.
			continue
		}
	}
}

// detach removes the peer from the fan-out set (pump-internal; the
// pump's own exit path).
func (r *Relay) detach(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.peers, name)
}

// Detach disconnects one participant: its session is closed, its pump
// joined, and its name freed for re-attachment. Detaching an unknown
// name is a no-op.
func (r *Relay) Detach(name string) {
	r.mu.Lock()
	p, ok := r.peers[name]
	r.mu.Unlock()
	if !ok {
		return
	}
	_ = p.sess.Close()
	<-p.done
}

// closeAllSessions force-closes every attached session, unblocking
// every pump. Idempotent (Session.Close is).
func (r *Relay) closeAllSessions() {
	r.mu.Lock()
	peers := make([]*relayPeer, 0, len(r.peers))
	for _, p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	for _, p := range peers {
		_ = p.sess.Close()
	}
}

// Close shuts the relay down: no further Attach succeeds, every
// participant session is closed, and every pump goroutine is joined
// before Close returns. It reports the first abnormal participant
// error observed over the relay's lifetime, if any.
func (r *Relay) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cancel() // fires closeAllSessions via AfterFunc
	r.wg.Wait()
	r.stopWatch()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// SplitParticipant decomposes a relayed channel into (participant block
// index, original channel).
func SplitParticipant(channel uint16) (idx int, orig uint16) {
	return int(channel / ParticipantChannelStride), channel % ParticipantChannelStride
}
