package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semholo/internal/obs"
	"semholo/internal/queue"
	"semholo/internal/transport"
)

// Relay is the multi-party edge component the paper's two-site Figure 1
// elides: each participant holds one session to the relay, which
// forwards every semantic frame to all other participants (an SFU —
// semantic forwarding unit, not a mixer: payloads are opaque, so the
// relay is mode-agnostic and adds no reconstruction latency). Control
// frames (gaze, bandwidth) are forwarded too, so foveated encoding and
// rate adaptation work across the relay.
//
// Frames fan out with the originating participant's name prepended on a
// dedicated control line during attach, letting receivers demultiplex
// participants by channel block (each participant's channels are offset
// by ParticipantChannelStride).
//
// Fan-out is serialize-once and slow-consumer isolated. An ingress pump
// captures each frame as one immutable transport.SharedFrame (one
// payload copy + one CRC pass total, regardless of subscriber count),
// then enqueues it onto every other participant's bounded
// latest-frame-wins egress queue — an O(peers) loop of non-blocking
// queue puts against a copy-on-write peer snapshot, no locks and no
// per-peer serialization on the ingress path. A dedicated egress
// goroutine per subscriber drains its queue and writes frames with that
// subscriber's own per-channel sequence numbers, so a stalled or slow
// peer fills and sheds only its own queue (drops counted per peer)
// while everyone else keeps receiving at full rate.
//
// Lifecycle: every Attach starts one pump and one egress goroutine. A
// pump exits when its session errors, its peer closes, the peer is
// Detached, or the relay's context is canceled; its exit closes the
// egress queue, which ends the egress goroutine after draining. Close
// detaches every peer and joins every goroutine before returning, so a
// relay can never leak. One participant failing detaches only that
// participant — an SFU must not tear down the conference for one
// dropped caller — but the first abnormal pump error is recorded and
// reported by Close, errgroup-style.
type Relay struct {
	ctx       context.Context
	cancel    context.CancelFunc
	stopWatch func() bool

	queueDepth int
	site       byte
	room       string
	// tierLevels enables per-subscriber semantic tiering when non-nil:
	// tiered ingress frames are assembled into SharedFrameSets and each
	// egress leg runs its own TierSelector over these levels.
	tierLevels  []transport.RateLevel
	newSelector func(levels []transport.RateLevel) *transport.TierSelector

	mu      sync.Mutex
	peers   map[string]*relayPeer
	nextIdx int
	closed  bool
	// snap is the copy-on-write fan-out set: an immutable slice swapped
	// on attach/detach so broadcast never takes r.mu.
	snap atomic.Pointer[[]*relayPeer]

	ingress    atomic.Uint64
	unroutable atomic.Uint64

	m atomic.Pointer[relayMetrics]

	wg      sync.WaitGroup
	errOnce sync.Once
	err     error
}

// RelayOptions tunes a relay.
type RelayOptions struct {
	// QueueDepth bounds each subscriber's egress queue (latest-frame-wins;
	// default 16). Deeper queues ride out longer stalls at the cost of
	// staler frames for recovering peers.
	QueueDepth int
	// Registry, when non-nil, receives the relay's fan-out metrics
	// (equivalent to calling Instrument).
	Registry *obs.Registry
	// Site is the byte identifying this relay instance in hop records
	// (relay shard ID in a cascaded deployment; zero is fine for a single
	// relay).
	Site byte
	// Room names the room this relay fans out, used as the metric label
	// distinguishing rooms that share one registry (a shard hosts many).
	// Empty is exported as "default".
	Room string
	// TierLevels, when non-nil, turns on per-subscriber semantic
	// tiering (one entry per ladder rung, ascending bitrate): tiered
	// ingress frames are assembled into one SharedFrameSet per media
	// frame, and every egress leg runs its own TierSelector over these
	// levels — picking, per subscriber, which rung that leg gets, from
	// the leg's own queue depth, drop rate, RTT, and delivered
	// throughput. When nil, tiered frames are forwarded verbatim (the
	// relay is tier-transparent, every subscriber sees all rungs).
	TierLevels []transport.RateLevel
	// NewTierSelector, when non-nil, builds each attaching leg's
	// selector (tuned dwell/backoff); nil uses
	// transport.NewTierSelector defaults.
	NewTierSelector func(levels []transport.RateLevel) *transport.TierSelector
}

// DefaultRelayQueueDepth is the per-subscriber egress queue bound used
// when RelayOptions.QueueDepth is zero.
const DefaultRelayQueueDepth = 16

// ParticipantChannelStride separates participants' channel spaces when
// relayed: participant i's channel c arrives as c + i*stride.
const ParticipantChannelStride uint16 = 1000

// egressItem is one broadcast unit in flight to one subscriber, stamped
// at ingress so the egress goroutine can observe fan-out latency.
// Exactly one of sf (a plain frame) or set (one media frame at every
// ladder rung) is non-nil; from is the originating peer, the upstream a
// tier-switch keyframe request goes to.
type egressItem struct {
	sf   *transport.SharedFrame
	set  *transport.SharedFrameSet
	from *relayPeer
	at   time.Time
}

// traceID attributes a shed item in flight-recorder events.
func (it egressItem) traceID() uint64 {
	if it.sf != nil {
		return it.sf.TraceID
	}
	if it.set != nil {
		return it.set.TraceID()
	}
	return 0
}

type relayPeer struct {
	name string
	idx  int
	sess *transport.Session
	// trunkEgress marks a relay-to-relay downlink: the egress loop
	// forwards every rung of a tiered set in ladder order (no
	// TierSelector — the downstream shard's own legs pick rungs).
	trunkEgress bool
	// trunkIngress marks a relay-to-relay uplink: the pump skips channel
	// re-homing (the home shard already re-homed at origin) and adopts
	// the received payload buffer + CRC instead of re-copying.
	trunkIngress bool
	// out is the subscriber's bounded latest-frame-wins egress queue: the
	// broadcast loop's non-blocking handoff to this peer's egress
	// goroutine.
	out  *queue.Queue[egressItem]
	sent atomic.Uint64
	// sel picks this leg's tier from its own measured signals; est
	// measures the leg's delivered throughput. Both nil when the relay
	// is not tiering.
	sel *transport.TierSelector
	est *transport.BandwidthEstimator
	// tier is the rung this leg currently serves (-1 before the first
	// tiered frame); tierSwitches counts applied mid-stream switches.
	tier         atomic.Int64
	tierSwitches atomic.Uint64
	// done closes when the peer's pump goroutine has fully exited;
	// egressDone when its egress goroutine has. Detach and Close join on
	// both.
	done       chan struct{}
	egressDone chan struct{}
}

// NewRelay builds an empty relay with a background lifecycle (shut it
// down with Close).
func NewRelay() *Relay { return NewRelayContext(context.Background()) }

// NewRelayContext builds an empty relay whose lifetime is bounded by
// ctx: cancellation detaches every participant and stops every pump, as
// Close does.
func NewRelayContext(ctx context.Context) *Relay {
	return NewRelayOpts(ctx, RelayOptions{})
}

// NewRelayOpts builds an empty relay with explicit options.
func NewRelayOpts(ctx context.Context, opt RelayOptions) *Relay {
	ctx, cancel := context.WithCancel(ctx)
	r := &Relay{
		ctx: ctx, cancel: cancel, peers: map[string]*relayPeer{},
		queueDepth: opt.QueueDepth, site: opt.Site, room: opt.Room,
		tierLevels: opt.TierLevels, newSelector: opt.NewTierSelector,
	}
	if r.room == "" {
		r.room = "default"
	}
	if r.queueDepth <= 0 {
		r.queueDepth = DefaultRelayQueueDepth
	}
	r.snap.Store(&[]*relayPeer{})
	// On cancellation — ours via Close, or the parent's — force every
	// pump out of its blocking Recv by closing the peer sessions.
	r.stopWatch = context.AfterFunc(ctx, r.closeAllSessions)
	if opt.Registry != nil {
		r.Instrument(opt.Registry)
	}
	return r
}

// relayMetrics holds the push-observed series; per-peer queue series are
// pull-backed Funcs registered at attach time.
type relayMetrics struct {
	reg              *obs.Registry
	room             string
	broadcastSeconds *obs.Histogram
	egressSeconds    *obs.Histogram
	queueDepth       *obs.GaugeVec
	dropped          *obs.CounterVec
	delivered        *obs.CounterVec
	tier             *obs.GaugeVec
	tierSwitches     *obs.CounterVec
}

// Instrument registers the relay's fan-out metrics: broadcast (ingress
// enqueue-to-all) and ingress→egress latency histograms, ingress and
// unroutable frame counters, a live peer-count gauge, and per-peer
// queue depth / dropped / delivered series (labeled by room and
// participant, registered as peers attach; re-attaching a name resets
// its series). Every series carries the relay's room label, so a shard
// hosting many rooms on one registry stays scrapeable per room — the
// cluster's per-room/per-shard capacity accounting.
func (r *Relay) Instrument(reg *obs.Registry) {
	m := &relayMetrics{
		reg:  reg,
		room: r.room,
		broadcastSeconds: reg.Histogram("semholo_relay_fanout_broadcast_seconds",
			"Time one ingress frame spends enqueueing onto every subscriber egress queue.",
			nil, "room").With(r.room),
		egressSeconds: reg.Histogram("semholo_relay_fanout_egress_seconds",
			"Per-subscriber latency from relay ingress to the frame handed to the subscriber's wire.",
			nil, "room").With(r.room),
		queueDepth: reg.Gauge("semholo_relay_egress_queue_depth",
			"Live egress queue depth per subscriber.", "room", "peer"),
		dropped: reg.Counter("semholo_relay_egress_dropped_frames_total",
			"Frames shed by a subscriber's latest-frame-wins egress queue.", "room", "peer"),
		delivered: reg.Counter("semholo_relay_egress_delivered_frames_total",
			"Frames written to a subscriber's session.", "room", "peer"),
		tier: reg.Gauge("semholo_relay_egress_tier",
			"Ladder rung each subscriber leg currently serves (-1 before the first tiered frame).", "room", "peer"),
		tierSwitches: reg.Counter("semholo_relay_egress_tier_switches_total",
			"Mid-stream tier switches applied per subscriber leg.", "room", "peer"),
	}
	reg.Counter("semholo_relay_ingress_frames_total",
		"Routable frames accepted from participants for fan-out.", "room").
		Func(func() float64 { return float64(r.ingress.Load()) }, r.room)
	reg.Counter("semholo_relay_unroutable_frames_total",
		"Frames of types the relay does not forward (protocol drift detector).", "room").
		Func(func() float64 { return float64(r.unroutable.Load()) }, r.room)
	reg.Gauge("semholo_relay_peers",
		"Participants currently attached.", "room").
		Func(func() float64 { return float64(len(*r.snap.Load())) }, r.room)
	r.m.Store(m)
	// Cover peers attached before instrumentation.
	r.mu.Lock()
	for _, p := range r.peers {
		m.registerPeer(p)
	}
	r.mu.Unlock()
}

func (m *relayMetrics) registerPeer(p *relayPeer) {
	m.queueDepth.Func(func() float64 { return float64(p.out.Len()) }, m.room, p.name)
	m.dropped.Func(func() float64 { return float64(p.out.Dropped()) }, m.room, p.name)
	m.delivered.Func(func() float64 { return float64(p.sent.Load()) }, m.room, p.name)
	m.tier.Func(func() float64 { return float64(p.tier.Load()) }, m.room, p.name)
	m.tierSwitches.Func(func() float64 { return float64(p.tierSwitches.Load()) }, m.room, p.name)
}

// AttachOptions marks a peer's role in a cascaded deployment. The zero
// value is an ordinary participant.
type AttachOptions struct {
	// TrunkEgress attaches a relay-to-relay downlink: instead of running
	// a TierSelector, this leg forwards every rung of every tiered media
	// frame in ladder order, so the downstream shard receives the full
	// ladder and its own egress legs tier independently. Non-tiered
	// frames forward verbatim, exactly as a subscriber leg would — same
	// serialize-once write path, same 2 allocs/frame.
	TrunkEgress bool
	// TrunkIngress attaches a relay-to-relay uplink: frames arriving on
	// it were already re-homed into their originating participant's
	// channel block by the home shard, so the pump applies no channel
	// offset, and the received payload buffer and its CRC are adopted
	// into the re-shared frame instead of being copied and re-hashed.
	TrunkIngress bool
}

// Attach registers a session under the participant's name and starts
// forwarding its frames to everyone else. It returns the participant's
// channel-block index. Forwarding stops when the session errors or
// closes, on Detach, or when the relay shuts down; the peer is then
// detached and its pump and egress goroutines joined.
func (r *Relay) Attach(name string, sess *transport.Session) (int, error) {
	return r.AttachPeer(name, sess, AttachOptions{})
}

// AttachPeer is Attach with an explicit role — ordinary participant or
// trunk end of a relay-to-relay cascade link.
func (r *Relay) AttachPeer(name string, sess *transport.Session, opt AttachOptions) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, fmt.Errorf("core: relay is closed")
	}
	if _, dup := r.peers[name]; dup {
		r.mu.Unlock()
		return 0, fmt.Errorf("core: relay already has participant %q", name)
	}
	p := &relayPeer{
		name: name, idx: r.nextIdx, sess: sess,
		trunkEgress: opt.TrunkEgress, trunkIngress: opt.TrunkIngress,
		out:  queue.NewQueue[egressItem](r.queueDepth, false),
		done: make(chan struct{}), egressDone: make(chan struct{}),
	}
	p.tier.Store(-1)
	if r.tierLevels != nil && !p.trunkEgress {
		if r.newSelector != nil {
			p.sel = r.newSelector(r.tierLevels)
		} else {
			p.sel = transport.NewTierSelector(r.tierLevels)
		}
		p.est = transport.NewBandwidthEstimator()
	}
	// Shed frames become flight-recorder events carrying the dropped
	// frame's trace ID, so a missing frame in a waterfall is attributable
	// to the exact queue that shed it.
	p.out.OnDrop = func(ev egressItem) {
		obs.Flight.Record(obs.EvQueueDrop, "relay:"+p.name, ev.traceID(), int64(r.queueDepth), 0)
	}
	r.nextIdx++
	r.peers[name] = p
	r.storeSnapshotLocked()
	if m := r.m.Load(); m != nil {
		m.registerPeer(p)
	}
	r.wg.Add(2)
	r.mu.Unlock()

	go r.pump(p)
	go r.egress(p)
	return p.idx, nil
}

// storeSnapshotLocked rebuilds the immutable fan-out slice; callers hold
// r.mu.
func (r *Relay) storeSnapshotLocked() {
	snap := make([]*relayPeer, 0, len(r.peers))
	for _, p := range r.peers {
		snap = append(snap, p)
	}
	r.snap.Store(&snap)
}

// Peers returns the current participant names.
func (r *Relay) Peers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.peers))
	for n := range r.peers {
		names = append(names, n)
	}
	return names
}

// RelayPeerStats is one subscriber's delivery counters.
type RelayPeerStats struct {
	Name string
	// Queued is the live egress queue depth.
	Queued int
	// Delivered counts frames written to the subscriber's session.
	Delivered uint64
	// Dropped counts frames shed by the subscriber's latest-frame-wins
	// queue (a slow or stalled consumer sheds its own frames; nobody
	// else's are delayed).
	Dropped uint64
	// Tier is the ladder rung this leg currently serves (-1 before the
	// first tiered frame or when the relay is not tiering).
	Tier int
	// TierSwitches counts mid-stream tier switches applied on this leg.
	TierSwitches uint64
}

// PeerStats snapshots per-subscriber delivery counters, sorted by name.
func (r *Relay) PeerStats() []RelayPeerStats {
	peers := *r.snap.Load()
	stats := make([]RelayPeerStats, 0, len(peers))
	for _, p := range peers {
		stats = append(stats, RelayPeerStats{
			Name:         p.name,
			Queued:       p.out.Len(),
			Delivered:    p.sent.Load(),
			Dropped:      p.out.Dropped(),
			Tier:         int(p.tier.Load()),
			TierSwitches: p.tierSwitches.Load(),
		})
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

// IngressFrames counts routable frames accepted for fan-out.
func (r *Relay) IngressFrames() uint64 { return r.ingress.Load() }

// Unroutable counts frames of types the relay does not forward.
func (r *Relay) Unroutable() uint64 { return r.unroutable.Load() }

// pump is the per-participant ingress loop: it captures each received
// frame as a serialize-once SharedFrame and fans it out to every
// subscriber queue.
func (r *Relay) pump(p *relayPeer) {
	defer r.wg.Done()
	defer close(p.done)
	defer r.detach(p)
	base := uint16(p.idx) * ParticipantChannelStride
	if p.trunkIngress {
		// Trunk frames were re-homed by the home shard; re-offsetting here
		// would collide participant blocks across shards.
		base = 0
	}
	// curSet accumulates one tiered media frame (all ladder rungs) when
	// the relay is tiering. The sender's single transmit goroutine ships
	// rungs in order, so completion is a per-tier EndOfFrame bitmask.
	var curSet *transport.SharedFrameSet
	for {
		f, err := p.sess.Recv()
		recvUS := obs.NowMicros()
		if err != nil {
			if !benignSessionError(err) {
				r.errOnce.Do(func() {
					r.err = fmt.Errorf("core: relay participant %q: %w", p.name, err)
				})
			}
			return
		}
		var sf *transport.SharedFrame
		switch f.Type {
		case transport.TypeClose:
			return
		case transport.TypeSemantic:
			// Re-home the channel into the sender's block. CaptureShared
			// adopts the reader's payload buffer and the CRC it already
			// verified, so ingress does zero payload copies and zero extra
			// CRC passes — on a trunk leg this is what makes a cascaded
			// shard's re-share free; on a participant leg it simply moves
			// the per-frame allocation into the reader's next fill.
			sf, err = p.sess.CaptureShared(f)
			if err != nil {
				continue // unreachable: a decoded frame is within MaxPayload
			}
			sf.Channel += base
			if f.HopTraced() {
				// Stamp the relay-ingress hop once; every subscriber's copy
				// shares it. Send time is stamped just below, when the frame
				// enters the fan-out queues. A full carried path drops the
				// hop instead of failing the frame; the flight event keeps
				// the truncated waterfall explainable.
				if !sf.AppendHop(obs.Hop{
					Kind: obs.HopRelayIngress, Site: r.site,
					RecvMicros: recvUS, SendMicros: obs.NowMicros(),
				}) {
					obs.Flight.Record(obs.EvHopDropped, "relay:"+p.name,
						f.TraceID, int64(obs.HopRelayIngress), int64(len(sf.Hops())))
				}
				obs.Flight.Record(obs.EvRelayIngress, "relay:"+p.name, f.TraceID, int64(len(f.Payload)), 0)
			}
			if r.tierLevels != nil && sf.Flags&transport.FlagTier != 0 {
				// Tiered ingress: assemble the rungs into one set and
				// broadcast the whole media frame at once — each egress
				// leg picks its own rung at dequeue time.
				if curSet == nil || curSet.TierCount() != int(sf.TierCount) {
					if curSet, err = transport.NewSharedFrameSet(int(sf.TierCount)); err != nil {
						continue // unreachable: the reader validated 1..MaxTiers
					}
				}
				if err := curSet.Add(sf); err != nil {
					curSet = nil // mid-set ladder change; resync on the next media frame
					continue
				}
				if !curSet.Complete() {
					continue
				}
				r.ingress.Add(1)
				r.broadcastSet(p, curSet)
				curSet = nil
				continue
			}
		case transport.TypeControl:
			// Wire-compatible with the legacy SendControl forwarding path:
			// control frames land on the control channel with no flags.
			sf, err = transport.NewSharedFrame(transport.TypeControl, transport.ChannelControl, 0, f.Payload)
			if err != nil {
				continue
			}
		default:
			r.unroutable.Add(1)
			continue
		}
		r.ingress.Add(1)
		r.broadcast(p, sf)
	}
}

// broadcast enqueues one shared frame onto every other subscriber's
// egress queue: a lock-free walk of the copy-on-write peer snapshot with
// non-blocking puts, so ingress cost is O(peers) queue operations no
// matter how slow any consumer is.
func (r *Relay) broadcast(from *relayPeer, sf *transport.SharedFrame) {
	start := time.Now()
	for _, p := range *r.snap.Load() {
		if p == from {
			continue
		}
		// Latest-frame-wins Put never blocks; a full queue sheds its
		// oldest frame into the peer's drop counter.
		_ = p.out.Put(r.ctx, egressItem{sf: sf, at: start})
	}
	if m := r.m.Load(); m != nil {
		m.broadcastSeconds.Observe(time.Since(start).Seconds())
	}
}

// broadcastSet enqueues one complete tiered media frame onto every
// other subscriber's egress queue. Like broadcast, but the queue unit
// is the whole ladder: latest-frame-wins shedding drops entire media
// frames, never a single rung of one.
func (r *Relay) broadcastSet(from *relayPeer, set *transport.SharedFrameSet) {
	start := time.Now()
	for _, p := range *r.snap.Load() {
		if p == from {
			continue
		}
		_ = p.out.Put(r.ctx, egressItem{set: set, from: from, at: start})
	}
	if m := r.m.Load(); m != nil {
		m.broadcastSeconds.Observe(time.Since(start).Seconds())
	}
}

// egress is the per-subscriber delivery loop: it drains the peer's queue
// and writes frames with the peer's own session sequence numbers.
func (r *Relay) egress(p *relayPeer) {
	defer r.wg.Done()
	defer close(p.egressDone)
	st := tierEgressState{applied: -1, kfRequested: -1}
	for {
		it, err := p.out.Get(r.ctx)
		if err != nil {
			return // queue closed and drained, or relay shutting down
		}
		if it.set != nil {
			if p.trunkEgress {
				if r.egressTrunkSet(p, it) != nil {
					return
				}
				continue
			}
			if r.egressTiered(p, it, &st) != nil {
				// Broken peer: its own pump observes the session error
				// and detaches it.
				return
			}
			continue
		}
		if it.sf.Flags&transport.FlagHops != 0 {
			// Per-leg final hop: dequeue time is this leg's recv, the write
			// instant (stamped inside SendSharedEgress) its send — so each
			// subscriber's copy records its own egress queue dwell. The
			// flight event (whose queue-dwell payload is known at dequeue)
			// is recorded before the write, so anyone who has received the
			// frame is guaranteed to find it in the recorder.
			deq := obs.NowMicros()
			obs.Flight.Record(obs.EvRelayEgress, "relay:"+p.name, it.sf.TraceID,
				int64(deq)-it.at.UnixMicro(), 0)
			err = p.sess.SendSharedEgress(it.sf, obs.Hop{
				Kind: obs.HopRelayEgress, Site: r.site, RecvMicros: deq,
			})
		} else {
			err = p.sess.SendShared(it.sf)
		}
		if err != nil {
			// Broken peer: its own pump observes the session error and
			// detaches it.
			return
		}
		p.sent.Add(1)
		if m := r.m.Load(); m != nil {
			m.egressSeconds.Observe(time.Since(it.at).Seconds())
		}
	}
}

// tierSignalEvery is the coarse cadence (in dequeued media frames) at
// which an egress leg refreshes its drop-rate window and pings the
// subscriber for a fresh RTT sample.
const tierSignalEvery = 16

// tierEgressState is one egress leg's tier-serving state, local to its
// delivery loop.
type tierEgressState struct {
	applied     int // rung currently served (-1 before the first set)
	kfRequested int // rung we asked the publisher to keyframe (-1 none)

	items         uint64
	baseDropped   uint64
	baseDelivered uint64
	dropRate      float64
}

// egressTiered delivers one tiered media frame to one subscriber: it
// samples the leg's congestion signals, lets the leg's TierSelector
// pick a rung, and writes only that rung's frames. A rung change is
// applied mid-stream only on a frame set the receiver can cold-start
// from (every frame a keyframe); otherwise the leg keeps serving its
// old rung and asks the publisher for a tier keyframe, switching when
// it arrives. The first frame of an applied switch carries the
// tier-switch marker so the receiver resets its decoder state on
// exactly that boundary.
func (r *Relay) egressTiered(p *relayPeer, it egressItem, st *tierEgressState) error {
	now := time.Now()
	st.items++
	if st.items%tierSignalEvery == 1 {
		// Refresh the drop-rate window from the queue's shed counter and
		// keep the RTT sample fresh (the subscriber's Recv loop answers
		// the ping; a stalled subscriber inflates RTT, which is itself a
		// congestion signal).
		dropped, delivered := p.out.Dropped(), p.sent.Load()
		if dd, ds := dropped-st.baseDropped, delivered-st.baseDelivered; dd+ds > 0 {
			st.dropRate = float64(dd) / float64(dd+ds)
		}
		st.baseDropped, st.baseDelivered = dropped, delivered
		_ = p.sess.Ping()
	}
	target, _ := p.sel.Decide(now, transport.TierSignals{
		QueueDepth:  p.out.Len(),
		QueueCap:    r.queueDepth,
		DropRate:    st.dropRate,
		RTT:         p.sess.RTT(),
		EstimateBps: p.est.EstimateAt(now),
	})
	frames, actual := it.set.Nearest(target)
	if frames == nil {
		return nil // unreachable: only complete sets are broadcast
	}
	switching := false
	if st.applied >= 0 && actual != st.applied {
		if allKeyframes(frames) {
			switching = true
		} else {
			// The new rung's frames are deltas; a receiver switching onto
			// them would warm-start from the wrong state. Ask the
			// publisher for a keyframe at that rung (once per pending
			// target) and keep serving the old rung until it lands.
			if st.kfRequested != actual {
				if requestTierKeyframe(it.from, actual) == nil {
					st.kfRequested = actual
				}
			}
			if held, heldTier := it.set.Nearest(st.applied); held != nil {
				frames, actual = held, heldTier
			}
			if actual != st.applied {
				switching = true // the old rung vanished; forced switch
			}
		}
	}
	deq := obs.NowMicros()
	// Flight events go in before the writes: their payloads (queue
	// dwell, rung transition) are fully known at dequeue, and recording
	// first guarantees anyone who has received the frame finds them in
	// the recorder.
	if switching {
		p.tierSwitches.Add(1)
		obs.Flight.Record(obs.EvTierSwitch, "relay:"+p.name, it.set.TraceID(),
			int64(st.applied), int64(actual))
	}
	if tid := it.set.TraceID(); tid != 0 {
		obs.Flight.Record(obs.EvRelayEgress, "relay:"+p.name, tid,
			int64(deq)-it.at.UnixMicro(), int64(actual))
	}
	for i, sf := range frames {
		o := transport.SharedSendOpts{TierSwitch: switching && i == 0}
		if sf.Flags&transport.FlagHops != 0 {
			o.Egress = &obs.Hop{Kind: obs.HopRelayEgress, Site: r.site, RecvMicros: deq}
		}
		if err := p.sess.SendSharedLeg(sf, o); err != nil {
			return err
		}
		p.est.Observe(time.Now(), sf.WireLen())
	}
	if st.kfRequested == actual {
		st.kfRequested = -1
	}
	st.applied = actual
	p.tier.Store(int64(actual))
	p.sent.Add(1)
	if m := r.m.Load(); m != nil {
		m.egressSeconds.Observe(time.Since(it.at).Seconds())
	}
	return nil
}

// egressTrunkSet forwards one complete tiered media frame down a trunk
// leg: every rung, in ladder order, so the downstream shard re-shares
// the full ladder and its own subscriber legs keep tiering
// independently. Each wire frame costs exactly what a subscriber leg's
// does — the shared payload and its cached CRC are reused, only the
// 32-byte header is rebuilt per leg — so adding a trunk to a hot room
// is no more expensive than adding one subscriber per rung.
func (r *Relay) egressTrunkSet(p *relayPeer, it egressItem) error {
	deq := obs.NowMicros()
	if tid := it.set.TraceID(); tid != 0 {
		obs.Flight.Record(obs.EvRelayEgress, "relay:"+p.name, tid,
			int64(deq)-it.at.UnixMicro(), int64(it.set.TierCount()))
	}
	for t := 0; t < it.set.TierCount(); t++ {
		for _, sf := range it.set.Tier(t) {
			var o transport.SharedSendOpts
			if sf.Flags&transport.FlagHops != 0 {
				o.Egress = &obs.Hop{Kind: obs.HopRelayEgress, Site: r.site, RecvMicros: deq}
			}
			if err := p.sess.SendSharedLeg(sf, o); err != nil {
				return err
			}
		}
	}
	p.sent.Add(1)
	if m := r.m.Load(); m != nil {
		m.egressSeconds.Observe(time.Since(it.at).Seconds())
	}
	return nil
}

// allKeyframes reports whether every wire frame of a rung is a keyframe
// — the condition under which a receiver can cold-start from it.
func allKeyframes(frames []*transport.SharedFrame) bool {
	for _, sf := range frames {
		if sf.Flags&transport.FlagKeyframe == 0 {
			return false
		}
	}
	return len(frames) > 0
}

// requestTierKeyframe asks the originating participant for a
// self-contained frame at the given rung (wired to
// TierLadder.RequestKeyframe through the sender's control plane).
func requestTierKeyframe(from *relayPeer, tier int) error {
	if from == nil {
		return fmt.Errorf("core: tiered frame with no origin peer")
	}
	payload, err := json.Marshal(controlMsg{Kind: "keyframe", Tier: tier})
	if err != nil {
		return err
	}
	return from.sess.SendControl(payload)
}

// benignSessionError reports errors that mean "the peer or the relay
// went away on purpose" — the expected ends of a pump's life.
func benignSessionError(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, context.Canceled)
}

// detach removes the peer from the fan-out set and closes its egress
// queue (pump-internal; the pump's own exit path). Keyed by peer
// pointer, not name, so a re-attached name is never detached by its
// predecessor's exiting pump.
func (r *Relay) detach(p *relayPeer) {
	r.mu.Lock()
	if r.peers[p.name] == p {
		delete(r.peers, p.name)
		r.storeSnapshotLocked()
	}
	r.mu.Unlock()
	p.out.Close()
}

// Detach disconnects one participant: its session is closed, its pump
// and egress goroutines joined, and its name freed for re-attachment.
// Detaching an unknown name is a no-op.
func (r *Relay) Detach(name string) {
	r.mu.Lock()
	p, ok := r.peers[name]
	r.mu.Unlock()
	if !ok {
		return
	}
	_ = p.sess.Close()
	<-p.done
	<-p.egressDone
}

// closeAllSessions force-closes every attached session, unblocking
// every pump. Idempotent (Session.Close is).
func (r *Relay) closeAllSessions() {
	r.mu.Lock()
	peers := make([]*relayPeer, 0, len(r.peers))
	for _, p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	for _, p := range peers {
		_ = p.sess.Close()
	}
}

// Close shuts the relay down: no further Attach succeeds, every
// participant session is closed, and every pump and egress goroutine is
// joined before Close returns. It reports the first abnormal
// participant error observed over the relay's lifetime, if any.
func (r *Relay) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cancel() // fires closeAllSessions via AfterFunc
	r.wg.Wait()
	r.stopWatch()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// SplitParticipant decomposes a relayed channel into (participant block
// index, original channel).
func SplitParticipant(channel uint16) (idx int, orig uint16) {
	return int(channel / ParticipantChannelStride), channel % ParticipantChannelStride
}
