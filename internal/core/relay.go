package core

import (
	"fmt"
	"io"
	"sync"

	"semholo/internal/transport"
)

// Relay is the multi-party edge component the paper's two-site Figure 1
// elides: each participant holds one session to the relay, which
// forwards every semantic frame to all other participants (an SFU —
// semantic forwarding unit, not a mixer: payloads are opaque, so the
// relay is mode-agnostic and adds no reconstruction latency). Control
// frames (gaze, bandwidth) are forwarded too, so foveated encoding and
// rate adaptation work across the relay.
//
// Frames fan out with the originating participant's name prepended on a
// dedicated control line during attach, letting receivers demultiplex
// participants by channel block (each participant's channels are offset
// by ParticipantChannelStride).
type Relay struct {
	mu      sync.Mutex
	peers   map[string]*relayPeer
	nextIdx int
}

// ParticipantChannelStride separates participants' channel spaces when
// relayed: participant i's channel c arrives as c + i*stride.
const ParticipantChannelStride uint16 = 1000

type relayPeer struct {
	name string
	idx  int
	sess *transport.Session
}

// NewRelay builds an empty relay.
func NewRelay() *Relay {
	return &Relay{peers: map[string]*relayPeer{}}
}

// Attach registers a session under the participant's name and starts
// forwarding its frames to everyone else. It returns the participant's
// channel-block index. Forwarding stops when the session errors or
// closes; the peer is then detached.
func (r *Relay) Attach(name string, sess *transport.Session) (int, error) {
	r.mu.Lock()
	if _, dup := r.peers[name]; dup {
		r.mu.Unlock()
		return 0, fmt.Errorf("core: relay already has participant %q", name)
	}
	p := &relayPeer{name: name, idx: r.nextIdx, sess: sess}
	r.nextIdx++
	r.peers[name] = p
	r.mu.Unlock()

	go r.pump(p)
	return p.idx, nil
}

// Peers returns the current participant names.
func (r *Relay) Peers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.peers))
	for n := range r.peers {
		names = append(names, n)
	}
	return names
}

func (r *Relay) pump(p *relayPeer) {
	defer r.detach(p.name)
	base := uint16(p.idx) * ParticipantChannelStride
	for {
		f, err := p.sess.Recv()
		if err != nil {
			if err != io.EOF {
				// Connection torn down; nothing to report beyond detach.
				_ = err
			}
			return
		}
		if f.Type == transport.TypeClose {
			return
		}
		// Re-home the channel into the sender's block and fan out.
		out := f.Clone()
		out.Channel += base
		r.broadcast(p.name, out)
	}
}

func (r *Relay) broadcast(from string, f transport.Frame) {
	r.mu.Lock()
	targets := make([]*relayPeer, 0, len(r.peers))
	for name, p := range r.peers {
		if name != from {
			targets = append(targets, p)
		}
	}
	r.mu.Unlock()
	for _, p := range targets {
		var err error
		switch f.Type {
		case transport.TypeSemantic:
			err = p.sess.Send(f.Channel, f.Flags, f.Payload)
		case transport.TypeControl:
			err = p.sess.SendControl(f.Payload)
		}
		if err != nil {
			// Broken peer: let its own pump detach it.
			continue
		}
	}
}

func (r *Relay) detach(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.peers, name)
}

// SplitParticipant decomposes a relayed channel into (participant block
// index, original channel).
func SplitParticipant(channel uint16) (idx int, orig uint16) {
	return int(channel / ParticipantChannelStride), channel % ParticipantChannelStride
}
