package core

import (
	"math"
	"testing"

	"semholo/internal/body"
	"semholo/internal/capture"
	"semholo/internal/compress"
	"semholo/internal/compress/dracogo"
	"semholo/internal/gaze"
	"semholo/internal/geom"
	"semholo/internal/keypoint"
	"semholo/internal/metrics"
	"semholo/internal/nerf"
	"semholo/internal/pointcloud"
	"semholo/internal/textsem"
	"semholo/internal/transport"
)

// shared fixtures: model and a short captured sequence.
var (
	testModel = body.NewModel(nil, body.ModelOptions{Detail: 1})
	testSeq   = &capture.Sequence{
		Model:  testModel,
		Motion: body.Talking(nil),
		Rig:    capture.NewRing(4, 2.5, 1.0, geom.V3(0, 1.0, 0), 96, math.Pi/3, 17),
		FPS:    30,
		Render: capture.SkinShader(),
	}
)

// toFrames converts encoder output into the transport frames a decoder
// would see.
func toFrames(e EncodedFrame) []transport.Frame {
	out := make([]transport.Frame, 0, len(e.Channels))
	for _, c := range e.Channels {
		out = append(out, transport.Frame{
			Type:    transport.TypeSemantic,
			Channel: c.Channel,
			Flags:   c.Flags,
			Payload: c.Payload,
		})
	}
	return out
}

func newKeypointEncoder(sendTexture bool) *KeypointEncoder {
	return &KeypointEncoder{
		Model:       testModel,
		Detector:    keypoint.NewDetector(keypoint.DefaultDetector()),
		Filter:      keypoint.NewOneEuroFilter(1.0, 0.3),
		Codec:       compress.LZR(),
		SendTexture: sendTexture,
	}
}

func TestKeypointCodecRoundTrip(t *testing.T) {
	enc := newKeypointEncoder(false)
	dec := &KeypointDecoder{Model: testModel, Codec: compress.LZR(), Resolution: 40}
	cap0 := testSeq.FrameAt(3)
	ef, err := enc.Encode(cap0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ef.Channels) != 1 {
		t.Fatalf("%d channels", len(ef.Channels))
	}
	// Table 2 regime: compressed pose ≪ 2 KB.
	if ef.TotalBytes() > 2048 {
		t.Errorf("keypoint frame %d bytes", ef.TotalBytes())
	}
	data, err := dec.Decode(toFrames(ef))
	if err != nil {
		t.Fatal(err)
	}
	if data.Params == nil || data.Mesh == nil {
		t.Fatal("missing params or mesh")
	}
	// Reconstruction close to ground truth.
	truthMesh := cap0.Mesh
	rep := metrics.CompareMeshes(data.Mesh, truthMesh, 2000, 0.02)
	if rep.Chamfer > 0.08 {
		t.Errorf("keypoint round-trip chamfer %.3f m", rep.Chamfer)
	}
}

func TestKeypointWithTexture(t *testing.T) {
	enc := newKeypointEncoder(true)
	dec := &KeypointDecoder{Model: testModel, Codec: compress.LZR(), Resolution: 0}
	ef, err := enc.Encode(testSeq.FrameAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ef.Channels) != 2 {
		t.Fatalf("%d channels, want texture + pose", len(ef.Channels))
	}
	if _, err := dec.Decode(toFrames(ef)); err != nil {
		t.Fatal(err)
	}
	tex, w, h := dec.LastTexture()
	if tex == nil || w != 96 || h != 96 {
		t.Errorf("texture %dx%d, nil=%v", w, h, tex == nil)
	}
}

func TestKeypointUncompressedBigger(t *testing.T) {
	comp := newKeypointEncoder(false)
	raw := newKeypointEncoder(false)
	raw.Uncompressed = true
	c := testSeq.FrameAt(1)
	efC, _ := comp.Encode(c)
	efR, _ := raw.Encode(c)
	if efC.TotalBytes() >= efR.TotalBytes() {
		t.Errorf("compressed %d !< raw %d", efC.TotalBytes(), efR.TotalBytes())
	}
	if efR.TotalBytes() != body.MarshaledSize {
		t.Errorf("raw size %d != params size %d", efR.TotalBytes(), body.MarshaledSize)
	}
}

func TestTraditionalCodecRoundTrip(t *testing.T) {
	enc := &TraditionalEncoder{}
	dec := &TraditionalDecoder{}
	c := testSeq.FrameAt(2)
	ef, err := enc.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	data, err := dec.Decode(toFrames(ef))
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Mesh.Vertices) != len(c.Mesh.Vertices) {
		t.Fatal("vertex count changed")
	}
	rep := metrics.CompareMeshes(data.Mesh, c.Mesh, 2000, 0.01)
	if rep.Chamfer > 0.01 {
		t.Errorf("traditional chamfer %.4f", rep.Chamfer)
	}
}

func TestTraditionalCompressionRegime(t *testing.T) {
	// Table 2's right half: compressed ≈ 10× smaller than raw.
	c := testSeq.FrameAt(2)
	efRaw, _ := (&TraditionalEncoder{Uncompressed: true}).Encode(c)
	efComp, _ := (&TraditionalEncoder{}).Encode(c)
	ratio := float64(efRaw.TotalBytes()) / float64(efComp.TotalBytes())
	if ratio < 4 {
		t.Errorf("traditional compression ratio %.1f", ratio)
	}
	// And the semantic/traditional gap: raw mesh ≫ keypoint frame
	// (paper: ~207×).
	kp, _ := newKeypointEncoder(false).Encode(c)
	gap := float64(efRaw.TotalBytes()) / float64(kp.TotalBytes())
	if gap < 50 {
		t.Errorf("semantic gap only %.0f×, paper reports ~207×", gap)
	}
}

func TestTextCodecRoundTripAndDeltas(t *testing.T) {
	enc := &TextEncoder{
		Captioner:        textsem.Captioner{CellSize: 0.25, Precision: 2},
		Codec:            compress.LZR(),
		KeyframeInterval: 10,
	}
	dec := &TextDecoder{Codec: compress.LZR()}
	var sizes []int
	for i := 0; i < 4; i++ {
		c := testSeq.FrameAt(i)
		ef, err := enc.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, ef.TotalBytes())
		data, err := dec.Decode(toFrames(ef))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if data.Cloud == nil || data.Cloud.Len() < 100 {
			t.Fatalf("frame %d: cloud %v", i, data.Cloud)
		}
	}
	// Deltas (frames 1..3) smaller than the keyframe (frame 0).
	if sizes[1] >= sizes[0] || sizes[2] >= sizes[0] {
		t.Errorf("delta frames not smaller: %v", sizes)
	}
}

func TestTextDecoderRejectsDeltaFirst(t *testing.T) {
	enc := &TextEncoder{Captioner: textsem.Captioner{}, KeyframeInterval: 100}
	enc.Encode(testSeq.FrameAt(0)) // keyframe consumed by nobody
	ef, _ := enc.Encode(testSeq.FrameAt(1))
	dec := &TextDecoder{}
	if _, err := dec.Decode(toFrames(ef)); err == nil {
		t.Error("delta-before-keyframe accepted")
	}
}

func TestImageCodecColdStartAndFineTune(t *testing.T) {
	// Small rig for speed.
	seq := &capture.Sequence{
		Model:  testModel,
		Motion: body.Talking(nil),
		Rig:    capture.NewRing(3, 2.5, 1.0, geom.V3(0, 1.0, 0), 24, math.Pi/3, 18),
		FPS:    30,
		Render: capture.SkinShader(),
	}
	enc := &ImageEncoder{
		Scene: nerf.Scene{
			Bounds:  geom.NewAABB(geom.V3(-1, -0.1, -1), geom.V3(1, 2.0, 1)),
			Near:    1.2,
			Far:     4.0,
			Samples: 16,
		},
		Widths: []int{8, 16},
	}
	viewCam := seq.Rig.Cameras[0]
	dec := &ImageDecoder{
		ColdStartSteps: 60,
		FineTuneSteps:  10,
		RayStride:      1,
		ViewCamera:     &viewCam,
		Seed:           19,
	}
	// Frame 0: header + views, cold start.
	c0 := seq.FrameAt(0)
	ef0, err := enc.Encode(c0)
	if err != nil {
		t.Fatal(err)
	}
	if ef0.Channels[0].Channel != ChanImageHeader {
		t.Fatal("first frame must carry the header")
	}
	d0, err := dec.Decode(toFrames(ef0))
	if err != nil {
		t.Fatal(err)
	}
	if d0.NovelView == nil {
		t.Fatal("no novel view rendered")
	}
	// Frame 1: no header, fine-tune path.
	ef1, err := enc.Encode(seq.FrameAt(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range ef1.Channels {
		if ch.Channel == ChanImageHeader {
			t.Fatal("header resent")
		}
	}
	if _, err := dec.Decode(toFrames(ef1)); err != nil {
		t.Fatal(err)
	}
	// The trained model must beat an untrained one on view 0.
	gt := seq.Rig.CaptureFrames(c0.Mesh, capture.SkinShader())[0]
	trained, err := dec.RenderNovelView(viewCam, 16)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := nerf.NewNet([]int{8, 16}, 99)
	unstrained := fresh.RenderView(nerf.Scene{
		Bounds: enc.Scene.Bounds, Near: enc.Scene.Near, Far: enc.Scene.Far, Samples: enc.Scene.Samples,
	}, viewCam, 16)
	pT := metrics.PSNR(trained.Color, gt.Color)
	pU := metrics.PSNR(unstrained.Color, gt.Color)
	if pT <= pU {
		t.Errorf("trained PSNR %.1f !> untrained %.1f", pT, pU)
	}
}

func TestHybridCodecGraftsFovealMesh(t *testing.T) {
	sel := gaze.FovealSelector{Radius: 8, ViewDistance: 2}
	enc := &HybridEncoder{
		Keypoint:    newKeypointEncoder(false),
		Selector:    sel,
		MeshOptions: dracogo.Options{PositionBits: 14},
	}
	dec := &HybridDecoder{
		Model:                testModel,
		Codec:                compress.LZR(),
		PeripheralResolution: 32,
		Selector:             sel,
	}
	anchor := geom.V3(0, 1.5, 0.1) // looking at the face
	enc.SetGazeAnchor(anchor)
	dec.SetGazeAnchor(anchor)

	c := testSeq.FrameAt(4)
	ef, err := enc.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	// Pose + foveal mesh channels.
	if len(ef.Channels) != 2 {
		t.Fatalf("%d channels", len(ef.Channels))
	}
	// Hybrid costs more than keypoints alone but far less than the
	// full mesh (the §3.1 trade-off).
	kpOnly, _ := newKeypointEncoder(false).Encode(c)
	full, _ := (&TraditionalEncoder{}).Encode(c)
	if ef.TotalBytes() <= kpOnly.TotalBytes() {
		t.Errorf("hybrid %d ≤ keypoint %d bytes", ef.TotalBytes(), kpOnly.TotalBytes())
	}
	if ef.TotalBytes() >= full.TotalBytes() {
		t.Errorf("hybrid %d ≥ traditional %d bytes", ef.TotalBytes(), full.TotalBytes())
	}

	data, err := dec.Decode(toFrames(ef))
	if err != nil {
		t.Fatal(err)
	}
	if data.Mesh == nil {
		t.Fatal("no merged mesh")
	}
	// Quality near the anchor must beat pure-keypoint reconstruction at
	// the same peripheral resolution.
	nearAnchor := func(m interface {
		SamplePoints(int) []geom.Vec3
	}) []geom.Vec3 {
		var pts []geom.Vec3
		for _, p := range m.SamplePoints(6000) {
			if p.Dist(anchor) < 0.25 {
				pts = append(pts, p)
			}
		}
		return pts
	}
	truthNear := nearAnchor(c.Mesh)
	hybridNear := nearAnchor(data.Mesh)
	kpDec := &KeypointDecoder{Model: testModel, Codec: compress.LZR(), Resolution: 32}
	kpData, err := kpDec.Decode(toFrames(kpOnly))
	if err != nil {
		t.Fatal(err)
	}
	kpNear := nearAnchor(kpData.Mesh)
	if len(truthNear) == 0 || len(hybridNear) == 0 || len(kpNear) == 0 {
		t.Fatal("no samples near anchor")
	}
	hybridErr := metrics.CompareClouds(hybridNear, truthNear, 0.02).Chamfer
	kpErr := metrics.CompareClouds(kpNear, truthNear, 0.02).Chamfer
	if hybridErr >= kpErr {
		t.Errorf("foveal quality not better: hybrid %.4f vs keypoint %.4f", hybridErr, kpErr)
	}
}

func TestAdaptiveEncoderSwitches(t *testing.T) {
	text := &TextEncoder{Captioner: textsem.Captioner{}, Codec: compress.LZR()}
	kp := newKeypointEncoder(false)
	trad := &TraditionalEncoder{}
	ae, err := NewAdaptiveEncoder([]AdaptiveLevel{
		{Encoder: text, Bitrate: 0.05e6},
		{Encoder: kp, Bitrate: 0.4e6},
		{Encoder: trad, Bitrate: 12e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	var switches []Mode
	ae.OnSwitch = func(from, to Mode) { switches = append(switches, to) }

	if m := ae.UpdateBandwidth(100e6); m != ModeTraditional {
		t.Errorf("100 Mbps → %s", m)
	}
	if m := ae.UpdateBandwidth(1e6); m != ModeKeypoint {
		t.Errorf("1 Mbps → %s", m)
	}
	if m := ae.UpdateBandwidth(0.1e6); m != ModeText {
		t.Errorf("0.1 Mbps → %s", m)
	}
	if len(switches) != 3 {
		t.Errorf("switch notifications: %v", switches)
	}
	// Encoding delegates to the active level.
	ef, err := ae.Encode(testSeq.FrameAt(5))
	if err != nil {
		t.Fatal(err)
	}
	if ef.Channels[len(ef.Channels)-1].Channel != ChanTextGlobal {
		t.Error("active level not text")
	}
}

func TestAdaptiveDecoderDemuxes(t *testing.T) {
	ad := &AdaptiveDecoder{
		Keypoint:    &KeypointDecoder{Model: testModel, Codec: compress.LZR()},
		Traditional: &TraditionalDecoder{},
		Text:        &TextDecoder{Codec: compress.LZR()},
	}
	c := testSeq.FrameAt(6)

	kpEF, _ := newKeypointEncoder(false).Encode(c)
	if d, err := ad.Decode(toFrames(kpEF)); err != nil || d.Params == nil {
		t.Errorf("keypoint demux: %v", err)
	}
	tradEF, _ := (&TraditionalEncoder{}).Encode(c)
	if d, err := ad.Decode(toFrames(tradEF)); err != nil || d.Mesh == nil {
		t.Errorf("traditional demux: %v", err)
	}
	textEnc := &TextEncoder{Captioner: textsem.Captioner{}, Codec: compress.LZR()}
	textEF, _ := textEnc.Encode(c)
	if d, err := ad.Decode(toFrames(textEF)); err != nil || d.Cloud == nil {
		t.Errorf("text demux: %v", err)
	}
}

func TestRawMeshRoundTrip(t *testing.T) {
	m := testSeq.FrameAt(0).Mesh
	raw := rawMeshBytes(m)
	back, err := meshFromRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Vertices) != len(m.Vertices) || len(back.Faces) != len(m.Faces) {
		t.Fatal("sizes changed")
	}
	for i := range m.Vertices {
		if back.Vertices[i] != m.Vertices[i] {
			t.Fatal("vertex changed (raw codec must be lossless)")
		}
	}
	if _, err := meshFromRaw(raw[:len(raw)-4]); err == nil {
		t.Error("truncated raw mesh accepted")
	}
}

func TestDecoderChannelValidation(t *testing.T) {
	bogus := []transport.Frame{{Type: transport.TypeSemantic, Channel: 999, Flags: transport.FlagEndOfFrame}}
	for _, d := range []Decoder{
		&KeypointDecoder{Model: testModel, Codec: compress.LZR()},
		&TraditionalDecoder{},
		&TextDecoder{},
	} {
		if _, err := d.Decode(bogus); err == nil {
			t.Errorf("%s accepted bogus channel", d.Mode())
		}
	}
}

func TestTraditionalLODLadder(t *testing.T) {
	c := testSeq.FrameAt(7)
	full := &TraditionalEncoder{}
	lod := &TraditionalEncoder{TargetFaces: 800}
	efFull, _ := full.Encode(c)
	efLOD, _ := lod.Encode(c)
	if efLOD.TotalBytes() >= efFull.TotalBytes() {
		t.Errorf("LOD frame %d B not smaller than full %d B", efLOD.TotalBytes(), efFull.TotalBytes())
	}
	dec := &TraditionalDecoder{}
	data, err := dec.Decode(toFrames(efLOD))
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Mesh.Faces) > 850 {
		t.Errorf("decoded LOD has %d faces", len(data.Mesh.Faces))
	}
	// Shape still human-scale despite the decimation.
	rep := metrics.CompareMeshes(data.Mesh, c.Mesh, 3000, 0.02)
	if rep.Chamfer > 0.03 {
		t.Errorf("LOD chamfer %.4f m", rep.Chamfer)
	}
}

func TestCloudModeRoundTrip(t *testing.T) {
	// Dense fusion: the realistic capture-density regime where the
	// cloud dwarfs the keypoint stream.
	enc := &CloudEncoder{Fuse: pointcloud.FuseOptions{Stride: 1, Voxel: 0.008}}
	dec := &CloudDecoder{}
	c := testSeq.FrameAt(5)
	ef, err := enc.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	data, err := dec.Decode(toFrames(ef))
	if err != nil {
		t.Fatal(err)
	}
	if data.Cloud == nil {
		t.Fatal("no cloud decoded")
	}
	if data.Cloud.Len() < 200 {
		t.Fatalf("cloud too sparse: %d points", data.Cloud.Len())
	}
	// The decoded cloud must lie on the captured surface.
	rep := metrics.CompareClouds(data.Cloud.Points, c.Mesh.SamplePoints(4000), 0.02)
	if rep.Chamfer > 0.03 {
		t.Errorf("cloud mode chamfer %.4f", rep.Chamfer)
	}
	// And like the mesh baseline, it dwarfs the keypoint stream.
	kp, _ := newKeypointEncoder(false).Encode(c)
	if ef.TotalBytes() < 5*kp.TotalBytes() {
		t.Errorf("cloud frame %d B suspiciously close to keypoint %d B",
			ef.TotalBytes(), kp.TotalBytes())
	}
}

func TestKeypointLiftingPath(t *testing.T) {
	rgbd := newKeypointEncoder(false)
	lifted := newKeypointEncoder(false)
	lifted.UseLifting = true
	c := testSeq.FrameAt(9)
	efR, err := rgbd.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	efL, err := lifted.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	dec := &KeypointDecoder{Model: testModel, Codec: compress.LZR(), Resolution: 0}
	dataR, err := dec.Decode(toFrames(efR))
	if err != nil {
		t.Fatal(err)
	}
	dataL, err := dec.Decode(toFrames(efL))
	if err != nil {
		t.Fatal(err)
	}
	// Both paths deliver usable poses; RGB-D is at least as accurate
	// (the taxonomy's §2.3 comparison).
	truthKps := testModel.Keypoints(c.Truth)
	errOf := func(p *body.Params) float64 {
		implied := testModel.Keypoints(p)
		var s float64
		for i := 0; i < body.NumJoints; i++ {
			s += implied[i].Dist(truthKps[i])
		}
		return s / float64(body.NumJoints)
	}
	eR, eL := errOf(dataR.Params), errOf(dataL.Params)
	if eL > 0.15 {
		t.Errorf("lifting path unusable: %.3f m", eL)
	}
	if eR > eL*1.5 {
		t.Errorf("RGB-D (%.4f) much worse than lifting (%.4f), contradicting §2.3", eR, eL)
	}
}
