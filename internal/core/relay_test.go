package core

import (
	"context"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"semholo/internal/compress"
	"semholo/internal/geom"
	"semholo/internal/netsim"
	"semholo/internal/transport"
)

// relayParticipant is one attached test client.
type relayParticipant struct {
	name string
	sess *transport.Session
	link *netsim.Link
}

func attachParticipant(t *testing.T, r *Relay, name string) *relayParticipant {
	t.Helper()
	a, b, link := netsim.Pipe(netsim.LinkConfig{})
	type hs struct {
		s   *transport.Session
		err error
	}
	ch := make(chan hs, 1)
	go func() {
		s, _, err := transport.Accept(b, transport.Hello{Peer: "relay"})
		ch <- hs{s, err}
	}()
	sess, _, err := transport.Dial(a, transport.Hello{Peer: name})
	if err != nil {
		t.Fatal(err)
	}
	h := <-ch
	if h.err != nil {
		t.Fatal(h.err)
	}
	if _, err := r.Attach(name, h.s); err != nil {
		t.Fatal(err)
	}
	return &relayParticipant{name: name, sess: sess, link: link}
}

func TestRelayFansOutToAllOthers(t *testing.T) {
	r := NewRelay()
	alice := attachParticipant(t, r, "alice")
	bob := attachParticipant(t, r, "bob")
	carol := attachParticipant(t, r, "carol")
	defer alice.link.Close()
	defer bob.link.Close()
	defer carol.link.Close()

	if got := len(r.Peers()); got != 3 {
		t.Fatalf("%d peers", got)
	}

	// Alice streams one keypoint frame.
	enc := newKeypointEncoder(false)
	ef, err := enc.Encode(testSeq.FrameAt(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range ef.Channels {
		if err := alice.sess.Send(ch.Channel, ch.Flags, ch.Payload); err != nil {
			t.Fatal(err)
		}
	}

	// Both Bob and Carol receive it in Alice's channel block; Alice
	// receives nothing back.
	for _, p := range []*relayParticipant{bob, carol} {
		f, err := p.sess.Recv()
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		idx, orig := SplitParticipant(f.Channel)
		if orig != ChanKeypointData {
			t.Errorf("%s got channel %d (orig %d)", p.name, f.Channel, orig)
		}
		if idx != 0 { // alice attached first
			t.Errorf("%s got block %d", p.name, idx)
		}
		// Decodes like a direct stream.
		dec := &KeypointDecoder{Model: testModel, Codec: compress.LZR()}
		clone := f.Clone()
		clone.Channel = orig
		if _, err := dec.Decode([]transport.Frame{clone}); err != nil {
			t.Errorf("%s decode: %v", p.name, err)
		}
	}
}

func TestRelayControlFramesForwarded(t *testing.T) {
	r := NewRelay()
	viewer := attachParticipant(t, r, "viewer")
	presenter := attachParticipant(t, r, "presenter")
	defer viewer.link.Close()
	defer presenter.link.Close()

	// The viewer reports gaze; the presenter's session must see it.
	recv := &Receiver{Session: viewer.sess}
	if err := recv.ReportGaze(geom.V3(0, 1.5, 0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan transport.Frame, 1)
	go func() {
		f, err := presenter.sess.Recv()
		if err == nil {
			done <- f.Clone()
		}
	}()
	select {
	case f := <-done:
		if f.Type != transport.TypeControl {
			t.Errorf("forwarded type %v", f.Type)
		}
		sender := &Sender{Session: presenter.sess}
		got := false
		sender.OnGaze = func(v geom.Vec3) { got = true }
		if err := sender.HandleControl(f); err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Error("gaze callback not fired")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("control frame never forwarded")
	}
}

func TestRelayDetachOnClose(t *testing.T) {
	r := NewRelay()
	p1 := attachParticipant(t, r, "p1")
	p2 := attachParticipant(t, r, "p2")
	defer p2.link.Close()

	p1.sess.Close()
	deadline := time.Now().Add(2 * time.Second)
	for len(r.Peers()) != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.Peers(); len(got) != 1 || got[0] != "p2" {
		t.Errorf("peers after close: %v", got)
	}
}

func TestRelayRejectsDuplicateName(t *testing.T) {
	r := NewRelay()
	p := attachParticipant(t, r, "dup")
	defer p.link.Close()
	a, b, link := netsim.Pipe(netsim.LinkConfig{})
	defer link.Close()
	go transport.Dial(a, transport.Hello{Peer: "dup"})
	s, _, err := transport.Accept(b, transport.Hello{Peer: "relay"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Attach("dup", s); err == nil {
		t.Error("duplicate name accepted")
	}
}

func relayGoroutineCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			t.Fatalf("goroutine leak: %d live, baseline %d (stacks above)", n, base)
		}
	}
}

// TestRelayCloseJoinsAllPumps is the leak regression for the relay:
// Close must detach every participant and join every pump goroutine
// before returning.
func TestRelayCloseJoinsAllPumps(t *testing.T) {
	leakCheck := relayGoroutineCheck(t)
	r := NewRelay()
	var links []*netsim.Link
	for _, name := range []string{"a", "b", "c"} {
		p := attachParticipant(t, r, name)
		links = append(links, p.link)
	}
	if err := r.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if got := r.Peers(); len(got) != 0 {
		t.Errorf("peers after close: %v", got)
	}
	if _, err := r.Attach("late", nil); err == nil {
		t.Error("attach after close accepted")
	}
	for _, l := range links {
		l.Close()
	}
	leakCheck()
}

func TestRelayDetachJoinsPumpAndFreesName(t *testing.T) {
	r := NewRelay()
	defer r.Close()
	p1 := attachParticipant(t, r, "p")
	defer p1.link.Close()
	r.Detach("p")
	if got := r.Peers(); len(got) != 0 {
		t.Errorf("peers after detach: %v", got)
	}
	// The name is free again.
	p2 := attachParticipant(t, r, "p")
	defer p2.link.Close()
	if got := r.Peers(); len(got) != 1 || got[0] != "p" {
		t.Errorf("peers after re-attach: %v", got)
	}
	r.Detach("unknown") // no-op, must not panic or block
}

func TestRelayContextCancelShutsDown(t *testing.T) {
	leakCheck := relayGoroutineCheck(t)
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRelayContext(ctx)
	p1 := attachParticipant(t, r, "p1")
	p2 := attachParticipant(t, r, "p2")
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for len(r.Peers()) != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.Peers(); len(got) != 0 {
		t.Errorf("peers after context cancel: %v", got)
	}
	if err := r.Close(); err != nil {
		t.Errorf("close after cancel: %v", err)
	}
	p1.link.Close()
	p2.link.Close()
	leakCheck()
}
