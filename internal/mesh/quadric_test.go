package mesh

import (
	"math"
	"testing"

	"semholo/internal/geom"
)

func TestQuadricSimplifyReachesTarget(t *testing.T) {
	m := UnitSphere(4) // 5120 faces
	s := SimplifyQuadric(m, 500)
	if len(s.Faces) > 520 {
		t.Errorf("simplified to %d faces, want ≤ ~500", len(s.Faces))
	}
	if len(s.Faces) < 100 {
		t.Errorf("over-collapsed to %d faces", len(s.Faces))
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestQuadricPreservesShape(t *testing.T) {
	m := UnitSphere(4)
	s := SimplifyQuadric(m, 400)
	// All vertices near the unit sphere (QEM keeps them on the surface's
	// tangent planes).
	for _, v := range s.Vertices {
		if math.Abs(v.Len()-1) > 0.08 {
			t.Fatalf("vertex %v at radius %v", v, v.Len())
		}
	}
	// Volume within 10% of the sphere.
	if vol := s.Volume(); math.Abs(vol-4*math.Pi/3)/(4*math.Pi/3) > 0.12 {
		t.Errorf("volume %v vs sphere %v", vol, 4*math.Pi/3)
	}
}

func TestQuadricBeatsClusteringAtEqualBudget(t *testing.T) {
	m := UnitSphere(4)
	target := 300
	q := SimplifyQuadric(m, target)
	// Clustering with a grid tuned to land near the same face count.
	c := SimplifyClustering(m, 9)
	// Normalize comparison: mean radial error, same metric for both.
	radErr := func(mm *Mesh) float64 {
		var s float64
		for _, p := range mm.SamplePoints(3000) {
			s += math.Abs(p.Len() - 1)
		}
		return s / 3000
	}
	qe, ce := radErr(q), radErr(c)
	if qe >= ce {
		t.Errorf("QEM error %.5f not better than clustering %.5f (faces %d vs %d)",
			qe, ce, len(q.Faces), len(c.Faces))
	}
}

func TestQuadricNoOpWhenSmall(t *testing.T) {
	m := UnitSphere(1)
	s := SimplifyQuadric(m, 10000)
	if len(s.Faces) != len(m.Faces) {
		t.Error("target above face count should clone")
	}
}

func TestQuadricHandlesDegenerateInput(t *testing.T) {
	// A mesh with a zero-area face must not panic.
	m := &Mesh{
		Vertices: []geom.Vec3{{}, {X: 1}, {X: 2}, {Y: 1}},
		Faces:    []Face{{0, 1, 2}, {0, 1, 3}},
	}
	s := SimplifyQuadric(m, 1)
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid output: %v", err)
	}
}

func TestQuadricLODLadder(t *testing.T) {
	// Decreasing budgets give decreasing face counts and growing error —
	// a usable rate ladder.
	m := UnitSphere(4)
	prevFaces := len(m.Faces) + 1
	prevErr := -1.0
	for _, target := range []int{2000, 800, 200} {
		s := SimplifyQuadric(m, target)
		if len(s.Faces) >= prevFaces {
			t.Errorf("faces did not shrink at target %d", target)
		}
		prevFaces = len(s.Faces)
		var e float64
		for _, p := range s.SamplePoints(2000) {
			e += math.Abs(p.Len() - 1)
		}
		e /= 2000
		if prevErr >= 0 && e < prevErr/2 {
			t.Errorf("error unexpectedly improved at coarser LOD: %v -> %v", prevErr, e)
		}
		prevErr = e
	}
}

func BenchmarkQuadricSimplify(b *testing.B) {
	m := UnitSphere(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimplifyQuadric(m, 500)
	}
}
