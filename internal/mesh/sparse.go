package mesh

import (
	"semholo/internal/geom"
)

// ExtractIsosurfaceSparse polygonizes the zero level set like
// ExtractIsosurface but visits only lattice cubes near the surface: it
// seeds from the given surface points and flood-fills across
// sign-crossing cubes (6-adjacency). Field evaluations are cached per
// lattice vertex, so cost scales with surface area (O(R²)) instead of
// volume (O(R³)).
//
// Every connected surface component must contain at least one seed point
// (within one cell of the surface); components with no seed are silently
// missed. The avatar reconstructor seeds from its bone capsules, covering
// every component by construction.
func ExtractIsosurfaceSparse(field ScalarField, grid GridSpec, seeds []geom.Vec3) *Mesh {
	nx, ny, nz, cell := grid.cellCounts()
	if nx == 0 || len(seeds) == 0 {
		return &Mesh{}
	}
	vx, vy := nx+1, ny+1
	origin := grid.Bounds.Min

	latticePoint := func(i, j, k int) geom.Vec3 {
		return geom.Vec3{
			X: origin.X + float64(i)*cell,
			Y: origin.Y + float64(j)*cell,
			Z: origin.Z + float64(k)*cell,
		}
	}
	lidx := func(i, j, k int) int { return (k*vy+j)*vx + i }

	// Cached field samples per lattice vertex.
	values := make(map[int]float64)
	sample := func(i, j, k int) float64 {
		id := lidx(i, j, k)
		if v, ok := values[id]; ok {
			return v
		}
		v := field(latticePoint(i, j, k))
		values[id] = v
		return v
	}

	cubeOff := [8][3]int{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	tets := [6][4]int{
		{0, 5, 1, 6}, {0, 1, 2, 6}, {0, 2, 3, 6},
		{0, 3, 7, 6}, {0, 7, 4, 6}, {0, 4, 5, 6},
	}

	out := &Mesh{}
	type latticeEdge struct{ lo, hi int }
	shared := make(map[latticeEdge]int)
	edgeVertex := func(la, lb int, pa, pb geom.Vec3, va, vb float64) int {
		key := latticeEdge{la, lb}
		if la > lb {
			key = latticeEdge{lb, la}
		}
		if idx, ok := shared[key]; ok {
			return idx
		}
		t := 0.5
		if d := va - vb; d != 0 {
			t = va / d
		}
		t = geom.Clamp(t, 0, 1)
		idx := len(out.Vertices)
		out.Vertices = append(out.Vertices, pa.Lerp(pb, t))
		shared[key] = idx
		return idx
	}
	emit := func(a, b, c int, outward geom.Vec3) {
		pa, pb, pc := out.Vertices[a], out.Vertices[b], out.Vertices[c]
		n := pb.Sub(pa).Cross(pc.Sub(pa))
		if n.Dot(outward) < 0 {
			b, c = c, b
		}
		if a == b || b == c || a == c {
			return
		}
		out.Faces = append(out.Faces, Face{a, b, c})
	}

	type cellID struct{ i, j, k int }
	visited := make(map[cellID]bool)
	var queue []cellID

	enqueue := func(c cellID) {
		if c.i < 0 || c.j < 0 || c.k < 0 || c.i >= nx || c.j >= ny || c.k >= nz {
			return
		}
		if visited[c] {
			return
		}
		visited[c] = true
		queue = append(queue, c)
	}
	cellOf := func(p geom.Vec3) cellID {
		d := p.Sub(origin)
		return cellID{int(d.X / cell), int(d.Y / cell), int(d.Z / cell)}
	}
	for _, s := range seeds {
		c := cellOf(s)
		// Seed a small neighborhood to tolerate seeds slightly off the
		// surface.
		for dk := -1; dk <= 1; dk++ {
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					enqueue(cellID{c.i + di, c.j + dj, c.k + dk})
				}
			}
		}
	}

	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		var vals [8]float64
		anyNeg, anyPos := false, false
		for ci, off := range cubeOff {
			v := sample(c.i+off[0], c.j+off[1], c.k+off[2])
			vals[ci] = v
			if v < 0 {
				anyNeg = true
			} else {
				anyPos = true
			}
		}
		if !anyNeg || !anyPos {
			continue
		}
		for _, tet := range tets {
			polygonizeTet(out, tet, vals, c.i, c.j, c.k, cubeOff, latticePoint, lidx, edgeVertex, emit)
		}
		// The surface continues into face neighbors.
		enqueue(cellID{c.i + 1, c.j, c.k})
		enqueue(cellID{c.i - 1, c.j, c.k})
		enqueue(cellID{c.i, c.j + 1, c.k})
		enqueue(cellID{c.i, c.j - 1, c.k})
		enqueue(cellID{c.i, c.j, c.k + 1})
		enqueue(cellID{c.i, c.j, c.k - 1})
	}
	return out
}
