package mesh

import (
	"semholo/internal/geom"
	"semholo/internal/par"
)

// ExtractIsosurfaceSparse polygonizes the zero level set like
// ExtractIsosurface but visits only lattice cubes near the surface: it
// seeds from the given surface points and flood-fills across
// sign-crossing cubes (6-adjacency). Field evaluations are cached per
// lattice vertex, so cost scales with surface area (O(R²)) instead of
// volume (O(R³)).
//
// Every connected surface component must contain at least one seed point
// (within one cell of the surface); components with no seed are silently
// missed. The avatar reconstructor seeds from its bone capsules, covering
// every component by construction.
//
// This is the strict serial path:
// ExtractIsosurfaceSparseParallel(field, grid, seeds, 1).
func ExtractIsosurfaceSparse(field ScalarField, grid GridSpec, seeds []geom.Vec3) *Mesh {
	return ExtractIsosurfaceSparseParallel(field, grid, seeds, 1)
}

// ExtractIsosurfaceSparseParallel is the narrow-band extractor with
// concurrent field evaluation. The flood fill proceeds in wavefront
// rounds: each round gathers the not-yet-sampled lattice vertices of
// every frontier cube, evaluates them in parallel (the dominant cost —
// one smooth-union over all bone capsules per point), then polygonizes
// the frontier serially in queue order and enqueues the next ring.
//
// Traversal order, and therefore the output mesh, is a pure function of
// the field and seeds: worker count only changes how the batched field
// evaluations are scheduled, so Workers=N output is byte-identical to
// Workers=1.
func ExtractIsosurfaceSparseParallel(field ScalarField, grid GridSpec, seeds []geom.Vec3, workers int) *Mesh {
	nx, ny, nz, cell := grid.cellCounts()
	if nx == 0 || len(seeds) == 0 {
		return &Mesh{}
	}
	vx, vy := nx+1, ny+1
	origin := grid.Bounds.Min
	s := newSlabMesh(origin, cell, vx, vy)

	// Cached field samples per lattice vertex (linear index).
	values := make(map[int]float64)

	type cellID struct{ i, j, k int }
	visited := make(map[cellID]bool)
	var front, next []cellID

	enqueue := func(c cellID) {
		if c.i < 0 || c.j < 0 || c.k < 0 || c.i >= nx || c.j >= ny || c.k >= nz {
			return
		}
		if visited[c] {
			return
		}
		visited[c] = true
		next = append(next, c)
	}
	cellOf := func(p geom.Vec3) cellID {
		d := p.Sub(origin)
		return cellID{int(d.X / cell), int(d.Y / cell), int(d.Z / cell)}
	}
	for _, sd := range seeds {
		c := cellOf(sd)
		// Seed a small neighborhood to tolerate seeds slightly off the
		// surface.
		for dk := -1; dk <= 1; dk++ {
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					enqueue(cellID{c.i + di, c.j + dj, c.k + dk})
				}
			}
		}
	}

	// Per-round batch of lattice vertices to sample. needIDs collects
	// linear indices in first-need order; needVals receives the parallel
	// evaluations, one slot per id, so scheduling never reorders results.
	var needIDs []int
	var needVals []float64
	pointOf := func(id int) geom.Vec3 {
		i := id % vx
		j := (id / vx) % vy
		k := id / (vx * vy)
		return s.latticePoint(i, j, k)
	}

	for len(next) > 0 {
		front, next = next, front[:0]

		// Phase 1: sample every missing lattice corner of this wavefront
		// in parallel.
		needIDs = needIDs[:0]
		for _, c := range front {
			for _, off := range cubeOffsets {
				id := s.lidx(c.i+off[0], c.j+off[1], c.k+off[2])
				if _, ok := values[id]; ok {
					continue
				}
				values[id] = 0 // placeholder; filled below
				needIDs = append(needIDs, id)
			}
		}
		if cap(needVals) < len(needIDs) {
			needVals = make([]float64, len(needIDs))
		}
		needVals = needVals[:len(needIDs)]
		par.For(workers, len(needIDs), func(i int) {
			needVals[i] = field(pointOf(needIDs[i]))
		})
		for i, id := range needIDs {
			values[id] = needVals[i]
		}

		// Phase 2: polygonize the wavefront serially in queue order and
		// grow the next ring across sign-crossing faces.
		for _, c := range front {
			var vals [8]float64
			anyNeg, anyPos := false, false
			for ci, off := range cubeOffsets {
				v := values[s.lidx(c.i+off[0], c.j+off[1], c.k+off[2])]
				vals[ci] = v
				if v < 0 {
					anyNeg = true
				} else {
					anyPos = true
				}
			}
			if !anyNeg || !anyPos {
				continue
			}
			s.polygonizeCube(vals, c.i, c.j, c.k)
			// The surface continues into face neighbors.
			enqueue(cellID{c.i + 1, c.j, c.k})
			enqueue(cellID{c.i - 1, c.j, c.k})
			enqueue(cellID{c.i, c.j + 1, c.k})
			enqueue(cellID{c.i, c.j - 1, c.k})
			enqueue(cellID{c.i, c.j, c.k + 1})
			enqueue(cellID{c.i, c.j, c.k - 1})
		}
	}
	return s.mesh()
}
