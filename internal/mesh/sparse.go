package mesh

import (
	"math"
	"sort"

	"semholo/internal/geom"
	"semholo/internal/par"
)

// ExtractIsosurfaceSparse polygonizes the zero level set like
// ExtractIsosurface but visits only lattice cubes near the surface: it
// seeds from the given surface points and flood-fills across
// sign-crossing cubes (6-adjacency). Field evaluations are cached per
// lattice vertex, so cost scales with surface area (O(R²)) instead of
// volume (O(R³)).
//
// Every connected surface component must contain at least one seed point
// (within one cell of the surface); components with no seed are silently
// missed. The avatar reconstructor seeds from its bone capsules, covering
// every component by construction.
//
// This is the strict serial path:
// ExtractIsosurfaceSparseParallel(field, grid, seeds, 1).
func ExtractIsosurfaceSparse(field ScalarField, grid GridSpec, seeds []geom.Vec3) *Mesh {
	return ExtractIsosurfaceSparseParallel(field, grid, seeds, 1)
}

// ExtractIsosurfaceSparseParallel is the narrow-band extractor with
// concurrent field evaluation. Discovery proceeds in wavefront rounds:
// each round gathers the not-yet-sampled lattice vertices of every
// frontier cube and evaluates them in parallel (the dominant cost — one
// smooth-union over all bone capsules per point), then grows the next
// ring across sign-crossing faces. The discovered band is finally sorted
// into lattice scan order and polygonized serially, so the output mesh is
// a pure function of the band set and the field values: worker count only
// changes how the batched evaluations are scheduled, and Workers=N output
// is byte-identical to Workers=1.
func ExtractIsosurfaceSparseParallel(field ScalarField, grid GridSpec, seeds []geom.Vec3, workers int) *Mesh {
	return extractSparse(scalarTemporal{field}, grid, seeds, workers, nil, false)
}

// ExtractIsosurfaceSparseTemporal is the temporal-coherence variant used
// by the avatar reconstructor. It differs from
// ExtractIsosurfaceSparseParallel in three ways:
//
//   - Seeds are interior points (bone midpoints), not surface points: the
//     extractor snaps each seed to the lattice and marches the six axis
//     directions itself until the field changes sign. Marching samples
//     lattice vertices, so its evaluations land in the same cache the
//     wavefront uses.
//   - st carries the previous frame's surface band and lattice samples:
//     the wavefront starts from the whole previous band (discovery then
//     completes in O(1) rounds instead of one ring per round), and any
//     sample the field's Reusable test vouches for is copied instead of
//     re-evaluated.
//   - After discovery the band is filtered to the cells reachable from
//     this frame's seed cells, which makes the band — and therefore the
//     mesh — provably identical to what a cold run produces (see
//     DESIGN.md, "Temporal-coherence reconstruction cache").
//
// Sample reuse and band carry-over require an anchored grid (GridSpec
// with Cell > 0); on bounds-derived grids st still provides scratch-arena
// reuse but every frame runs cold. Passing st == nil runs cold with
// throwaway scratch.
func ExtractIsosurfaceSparseTemporal(tf TemporalField, grid GridSpec, seeds []geom.Vec3, workers int, st *SparseState) *Mesh {
	return extractSparse(tf, grid, seeds, workers, st, true)
}

// axis-aligned march/neighbor directions.
var axisDirs = [6][3]int{
	{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
}

// marchCap bounds seed-march length, matching the old per-seed cap.
const marchCap = 1024

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// extractSparse is the shared narrow-band engine. march selects between
// interior seeds (lattice-aligned marching to the surface) and
// near-surface seeds (a one-cell ring around each seed's cube).
func extractSparse(tf TemporalField, grid GridSpec, seeds []geom.Vec3, workers int, st *SparseState, march bool) *Mesh {
	lay, ok := grid.layout()
	if !ok || len(seeds) == 0 {
		return &Mesh{}
	}
	if st == nil {
		st = &SparseState{}
	}

	// Temporal state is only sound on anchored grids: global lattice
	// coordinates must mean the same world point in every frame.
	temporal := lay.anchored
	warm := temporal && st.cell == lay.cell && len(st.band) > 0
	usePrev := temporal && st.cell == lay.cell && len(st.prev) > 0
	st.Reused, st.Evaluated, st.Warm = 0, 0, warm

	if st.cur == nil {
		st.cur = make(map[int64]sample)
	}
	clear(st.cur)
	if st.visited == nil {
		st.visited = make(map[int64]bool)
	}
	clear(st.visited)
	values, prev, visited := st.cur, st.prev, st.visited

	s := newSlabMesh(lay)
	if st.shared == nil {
		st.shared = make(map[latticeEdge]int)
	}
	clear(st.shared)
	s.shared = st.shared
	s.keys = st.edgeKeys[:0]
	s.verts = make([]geom.Vec3, 0, st.lastVerts)
	s.faces = make([]Face, 0, st.lastFaces)

	gkey := func(i, j, k int) int64 {
		return packG(lay.base[0]+i, lay.base[1]+j, lay.base[2]+k)
	}

	next := st.next[:0]
	roots := st.roots[:0]
	enqueue := func(c cell3, root bool) {
		if c.i < 0 || c.j < 0 || c.k < 0 || c.i >= lay.nx || c.j >= lay.ny || c.k >= lay.nz {
			return
		}
		key := gkey(c.i, c.j, c.k)
		if root {
			// Roots anchor the reachability filter; record them even when
			// a previous-band enqueue got to the cell first.
			roots = append(roots, key)
		}
		if visited[key] {
			return
		}
		visited[key] = true
		next = append(next, c)
	}
	ring := func(c cell3, root bool) {
		for dk := -1; dk <= 1; dk++ {
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					enqueue(cell3{c.i + di, c.j + dj, c.k + dk}, root)
				}
			}
		}
	}

	if march {
		// Lattice-aligned seed marching: snap each seed to its nearest
		// lattice vertex and walk the six axis directions until the field
		// changes sign. Rays run concurrently with per-ray result
		// buffers; the merge walks rays in index order, so the sample
		// cache and the enqueue order are worker-count invariant.
		nRays := len(seeds) * 6
		for len(st.rays) < nRays {
			st.rays = append(st.rays, seedRay{})
		}
		rays := st.rays[:nRays]
		par.For(workers, nRays, func(r int) {
			ry := &rays[r]
			ry.keys, ry.out, ry.hit, ry.cross = ry.keys[:0], ry.out[:0], ry.hit[:0], ry.cross[:0]
			sd := seeds[r/6]
			dir := axisDirs[r%6]
			i := clampi(int(math.Round((sd.X-lay.origin.X)/lay.cell)), 0, lay.nx)
			j := clampi(int(math.Round((sd.Y-lay.origin.Y)/lay.cell)), 0, lay.ny)
			k := clampi(int(math.Round((sd.Z-lay.origin.Z)/lay.cell)), 0, lay.nz)
			eval := func(i, j, k int) float64 {
				key := gkey(i, j, k)
				pt := s.latticePoint(i, j, k)
				if usePrev {
					if sm, ok := prev[key]; ok && tf.Reusable(pt, sm.val, sm.aux) {
						ry.keys = append(ry.keys, key)
						ry.out = append(ry.out, sm)
						ry.hit = append(ry.hit, true)
						return sm.val
					}
				}
				v, a := tf.Eval(pt)
				ry.keys = append(ry.keys, key)
				ry.out = append(ry.out, sample{v, a})
				ry.hit = append(ry.hit, false)
				return v
			}
			neg0 := eval(i, j, k) < 0
			// The start cell's ring covers seeds already on the surface
			// (and bones thinner than a cell, which may never produce a
			// lattice sign change along the ray).
			ry.cross = append(ry.cross, cell3{
				clampi(i, 0, lay.nx-1), clampi(j, 0, lay.ny-1), clampi(k, 0, lay.nz-1),
			})
			for step := 0; step < marchCap; step++ {
				ni, nj, nk := i+dir[0], j+dir[1], k+dir[2]
				if ni < 0 || nj < 0 || nk < 0 || ni > lay.nx || nj > lay.ny || nk > lay.nz {
					break
				}
				if (eval(ni, nj, nk) < 0) != neg0 {
					// The crossing lies on the edge between the two
					// vertices; ring-enqueue around the cell at the lower
					// vertex of that edge.
					li, lj, lk := i, j, k
					if dir[0] < 0 || dir[1] < 0 || dir[2] < 0 {
						li, lj, lk = ni, nj, nk
					}
					ry.cross = append(ry.cross, cell3{
						clampi(li, 0, lay.nx-1), clampi(lj, 0, lay.ny-1), clampi(lk, 0, lay.nz-1),
					})
					break
				}
				i, j, k = ni, nj, nk
			}
		})
		for r := range rays {
			ry := &rays[r]
			for n, key := range ry.keys {
				if _, ok := values[key]; !ok {
					values[key] = ry.out[n]
					if ry.hit[n] {
						st.Reused++
					} else {
						st.Evaluated++
					}
				}
			}
			for _, c := range ry.cross {
				ring(c, true)
			}
		}
	} else {
		for _, sd := range seeds {
			d := sd.Sub(lay.origin)
			c := cell3{int(d.X / lay.cell), int(d.Y / lay.cell), int(d.Z / lay.cell)}
			// Seed a small neighborhood to tolerate seeds slightly off
			// the surface.
			ring(c, true)
		}
	}

	if warm {
		// Seed the wavefront with the whole previous band: discovery then
		// finishes in a couple of rounds (one big batch plus the rim the
		// surface moved into) instead of one ring per round.
		for _, key := range st.band {
			gi, gj, gk := unpackG(key)
			enqueue(cell3{gi - lay.base[0], gj - lay.base[1], gk - lay.base[2]}, false)
		}
	}

	// Discovery: flood-fill across sign-crossing cubes, batching field
	// evaluation per wavefront round. Cells are recorded, not yet
	// polygonized — the band is sorted first so traversal order cannot
	// leak into the output.
	front := st.front[:0]
	band := st.bandCells[:0]
	needKeys, needPts, needOut, needHit := st.needKeys[:0], st.needPts[:0], st.needOut[:0], st.needHit[:0]
	for len(next) > 0 {
		front, next = next, front[:0]

		needKeys, needPts = needKeys[:0], needPts[:0]
		for _, c := range front {
			for _, off := range cubeOffsets {
				i, j, k := c.i+off[0], c.j+off[1], c.k+off[2]
				key := gkey(i, j, k)
				if _, ok := values[key]; ok {
					continue
				}
				values[key] = sample{} // placeholder; filled below
				needKeys = append(needKeys, key)
				needPts = append(needPts, s.latticePoint(i, j, k))
			}
		}
		if cap(needOut) < len(needKeys) {
			needOut = make([]sample, len(needKeys))
			needHit = make([]bool, len(needKeys))
		}
		needOut, needHit = needOut[:len(needKeys)], needHit[:len(needKeys)]
		par.For(workers, len(needKeys), func(n int) {
			if usePrev {
				if sm, ok := prev[needKeys[n]]; ok && tf.Reusable(needPts[n], sm.val, sm.aux) {
					needOut[n], needHit[n] = sm, true
					return
				}
			}
			v, a := tf.Eval(needPts[n])
			needOut[n], needHit[n] = sample{v, a}, false
		})
		for n, key := range needKeys {
			values[key] = needOut[n]
			if needHit[n] {
				st.Reused++
			} else {
				st.Evaluated++
			}
		}

		for _, c := range front {
			anyNeg, anyPos := false, false
			for _, off := range cubeOffsets {
				if values[gkey(c.i+off[0], c.j+off[1], c.k+off[2])].val < 0 {
					anyNeg = true
				} else {
					anyPos = true
				}
			}
			if !anyNeg || !anyPos {
				continue
			}
			band = append(band, c)
			// The surface continues into face neighbors.
			for _, d := range axisDirs {
				enqueue(cell3{c.i + d[0], c.j + d[1], c.k + d[2]}, false)
			}
		}
	}

	if warm {
		// Reachability filter: keep only band cells connected to this
		// frame's seed cells through face-adjacent sign-crossing cells.
		// A cold run discovers exactly that set (expansion only ever
		// proceeds from sign-crossing cells, starting at the seed ring),
		// so the filtered warm band — over bitwise-identical sample
		// values — matches the cold band cell for cell.
		// The marks are a dense byte per lattice cell (the lattice is
		// bounded by Resolution³) so the flood fill runs on array
		// indexing; profiling shows map traffic dominates the warm path.
		n := lay.nx * lay.ny * lay.nz
		if cap(st.mark) < n {
			st.mark = make([]uint8, n)
		}
		mark := st.mark[:n]
		clear(mark)
		lidx := func(i, j, k int) int { return (k*lay.ny+j)*lay.nx + i }
		const (
			inBand uint8 = 1 // sign-crossing, not yet proven reachable
			kept   uint8 = 2 // reachable from a seed cell
		)
		for _, c := range band {
			mark[lidx(c.i, c.j, c.k)] = inBand
		}
		queue := st.queue[:0]
		for _, key := range roots {
			gi, gj, gk := unpackG(key)
			c := cell3{gi - lay.base[0], gj - lay.base[1], gk - lay.base[2]}
			if li := lidx(c.i, c.j, c.k); mark[li] == inBand {
				mark[li] = kept
				queue = append(queue, c)
			}
		}
		for len(queue) > 0 {
			c := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, d := range axisDirs {
				ni, nj, nk := c.i+d[0], c.j+d[1], c.k+d[2]
				if ni < 0 || nj < 0 || nk < 0 || ni >= lay.nx || nj >= lay.ny || nk >= lay.nz {
					continue
				}
				if li := lidx(ni, nj, nk); mark[li] == inBand {
					mark[li] = kept
					queue = append(queue, cell3{ni, nj, nk})
				}
			}
		}
		st.queue = queue
		keptBand := band[:0]
		for _, c := range band {
			if mark[lidx(c.i, c.j, c.k)] == kept {
				keptBand = append(keptBand, c)
			}
		}
		band = keptBand
	}

	// Polygonize in lattice scan order (z, then y, then x — the dense
	// extractor's cube order), making the mesh a pure function of the
	// band set and sample values.
	sort.Slice(band, func(a, b int) bool {
		ca, cb := band[a], band[b]
		if ca.k != cb.k {
			return ca.k < cb.k
		}
		if ca.j != cb.j {
			return ca.j < cb.j
		}
		return ca.i < cb.i
	})
	for _, c := range band {
		var vals [8]float64
		for ci, off := range cubeOffsets {
			vals[ci] = values[gkey(c.i+off[0], c.j+off[1], c.k+off[2])].val
		}
		s.polygonizeCube(vals, c.i, c.j, c.k)
	}

	// Persist state for the next frame; on non-anchored grids only the
	// scratch arenas survive.
	st.front, st.next, st.roots = front, next, roots
	st.bandCells = band
	st.needKeys, st.needPts, st.needOut, st.needHit = needKeys, needPts, needOut, needHit
	st.edgeKeys = s.keys
	st.lastVerts, st.lastFaces = len(s.verts), len(s.faces)
	if temporal {
		st.cell = lay.cell
		st.band = st.band[:0]
		for _, c := range band {
			st.band = append(st.band, gkey(c.i, c.j, c.k))
		}
		st.prev, st.cur = st.cur, st.prev
		if st.cur == nil {
			st.cur = make(map[int64]sample)
		}
	}
	return s.mesh()
}
