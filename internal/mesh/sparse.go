package mesh

import (
	"math"
	"sort"

	"semholo/internal/geom"
	"semholo/internal/par"
)

// ExtractIsosurfaceSparse polygonizes the zero level set like
// ExtractIsosurface but visits only lattice cubes near the surface: it
// seeds from the given surface points and flood-fills across
// sign-crossing cubes (6-adjacency). Field evaluations are cached per
// lattice vertex, so cost scales with surface area (O(R²)) instead of
// volume (O(R³)).
//
// Every connected surface component must contain at least one seed point
// (within one cell of the surface); components with no seed are silently
// missed. The avatar reconstructor seeds from its bone capsules, covering
// every component by construction.
//
// This is the strict serial path:
// ExtractIsosurfaceSparseParallel(field, grid, seeds, 1).
func ExtractIsosurfaceSparse(field ScalarField, grid GridSpec, seeds []geom.Vec3) *Mesh {
	return ExtractIsosurfaceSparseParallel(field, grid, seeds, 1)
}

// ExtractIsosurfaceSparseParallel is the narrow-band extractor with
// concurrent field evaluation. Discovery proceeds in wavefront rounds:
// each round gathers the not-yet-sampled lattice vertices of every
// frontier cube and evaluates them in parallel (the dominant cost — one
// smooth-union over all bone capsules per point), then grows the next
// ring across sign-crossing faces. The discovered band is finally sorted
// into lattice scan order and polygonized serially, so the output mesh is
// a pure function of the band set and the field values: worker count only
// changes how the batched evaluations are scheduled, and Workers=N output
// is byte-identical to Workers=1.
func ExtractIsosurfaceSparseParallel(field ScalarField, grid GridSpec, seeds []geom.Vec3, workers int) *Mesh {
	return extractSparse(scalarTemporal{field}, grid, seeds, workers, nil, false)
}

// ExtractIsosurfaceSparseTemporal is the temporal-coherence variant used
// by the avatar reconstructor. It differs from
// ExtractIsosurfaceSparseParallel in three ways:
//
//   - Seeds are interior points (bone midpoints), not surface points: the
//     extractor snaps each seed to the lattice and marches the six axis
//     directions itself until the field changes sign. Marching samples
//     lattice vertices, so its evaluations land in the same cache the
//     wavefront uses.
//   - st carries the previous frame's surface band and lattice samples:
//     the wavefront starts from the whole previous band (discovery then
//     completes in O(1) rounds instead of one ring per round), and any
//     sample the field's Reusable test vouches for is copied instead of
//     re-evaluated.
//   - After discovery the band is filtered to the cells reachable from
//     this frame's seed cells, which makes the band — and therefore the
//     mesh — provably identical to what a cold run produces (see
//     DESIGN.md, "Temporal-coherence reconstruction cache").
//
// Sample reuse and band carry-over require an anchored grid (GridSpec
// with Cell > 0); on bounds-derived grids st still provides scratch-arena
// reuse but every frame runs cold. Passing st == nil runs cold with
// throwaway scratch.
func ExtractIsosurfaceSparseTemporal(tf TemporalField, grid GridSpec, seeds []geom.Vec3, workers int, st *SparseState) *Mesh {
	return extractSparse(tf, grid, seeds, workers, st, true)
}

// axis-aligned march/neighbor directions.
var axisDirs = [6][3]int{
	{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
}

// marchCap bounds seed-march length, matching the old per-seed cap.
const marchCap = 1024

// bandOrder co-sorts the discovered band cells and their 8-per-cell
// corner arena slots into lattice scan order (z, then y, then x). Cells
// are unique, so the unstable sort still yields one deterministic order.
type bandOrder struct {
	cells   []cell3
	corners []int32
}

func (b bandOrder) Len() int { return len(b.cells) }
func (b bandOrder) Less(x, y int) bool {
	cx, cy := b.cells[x], b.cells[y]
	if cx.k != cy.k {
		return cx.k < cy.k
	}
	if cx.j != cy.j {
		return cx.j < cy.j
	}
	return cx.i < cy.i
}
func (b bandOrder) Swap(x, y int) {
	b.cells[x], b.cells[y] = b.cells[y], b.cells[x]
	cx, cy := b.corners[x*8:x*8+8], b.corners[y*8:y*8+8]
	for t := 0; t < 8; t++ {
		cx[t], cy[t] = cy[t], cx[t]
	}
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// extractSparse is the shared narrow-band engine. march selects between
// interior seeds (lattice-aligned marching to the surface) and
// near-surface seeds (a one-cell ring around each seed's cube).
func extractSparse(tf TemporalField, grid GridSpec, seeds []geom.Vec3, workers int, st *SparseState, march bool) *Mesh {
	lay, ok := grid.layout()
	if !ok || len(seeds) == 0 {
		return &Mesh{}
	}
	if st == nil {
		st = &SparseState{}
	}

	// Temporal state is only sound on anchored grids: global lattice
	// coordinates must mean the same world point in every frame.
	temporal := lay.anchored
	warm := temporal && st.cell == lay.cell && len(st.band) > 0
	usePrev := temporal && st.cell == lay.cell && len(st.prevSamples) > 0
	st.Reused, st.Evaluated, st.Warm = 0, 0, warm

	// Lattice samples live in a flat arena; the slot index — a dense
	// int32 per lattice vertex on moderate grids, a map keyed by packed
	// global coordinates on huge ones — assigns each vertex its arena
	// slot once, at discovery time. Every later read — sign detection,
	// polygonization — is plain array indexing. Profiling showed repeated
	// map reads of the same vertices dominating extraction once the field
	// itself was pruned. Dense slot arrays store slot+1 so a cleared
	// array (all zeros) means "unsampled".
	const denseMax = 1 << 24 // cells or vertices; ≤64MB int32 scratch
	nVX, nVY, nVZ := lay.nx+1, lay.ny+1, lay.nz+1
	nVerts := nVX * nVY * nVZ
	denseSlots := nVerts <= denseMax
	var slots []int32
	if denseSlots {
		if cap(st.slotDense) < nVerts {
			st.slotDense = make([]int32, nVerts)
		}
		slots = st.slotDense[:nVerts]
		clear(slots)
	} else {
		if st.cur == nil {
			st.cur = make(map[int64]int32)
		}
		clear(st.cur)
	}
	values := st.cur
	samples := st.curSamples[:0]
	prev, prevSamples := st.prev, st.prevSamples
	prevDense, prevSlots := st.prevDense, st.prevSlotDense
	pBase, pVX, pVY, pVZ := st.prevBase, st.prevVX, st.prevVY, st.prevVZ

	// prevSlot resolves a lattice vertex (grid-local coords) to its arena
	// slot in prevSamples, or -1 when the previous frame never sampled
	// it. In dense mode this is pure array indexing.
	prevSlot := func(i, j, k int) int32 {
		if prevDense {
			pi := lay.base[0] + i - pBase[0]
			pj := lay.base[1] + j - pBase[1]
			pk := lay.base[2] + k - pBase[2]
			if pi < 0 || pj < 0 || pk < 0 || pi >= pVX || pj >= pVY || pk >= pVZ {
				return -1
			}
			return prevSlots[(pk*pVY+pj)*pVX+pi] - 1
		}
		if si, ok := prev[packG(lay.base[0]+i, lay.base[1]+j, lay.base[2]+k)]; ok {
			return si
		}
		return -1
	}

	// Wavefront dedup: a dense byte per cube when the grid is moderate,
	// a map on the huge grids where a dense array would dwarf the band.
	nCells := lay.nx * lay.ny * lay.nz
	denseVis := nCells <= denseMax
	var vis []uint8
	if denseVis {
		if cap(st.visitedDense) < nCells {
			st.visitedDense = make([]uint8, nCells)
		}
		vis = st.visitedDense[:nCells]
		clear(vis)
	} else {
		if st.visited == nil {
			st.visited = make(map[int64]bool)
		}
		clear(st.visited)
	}
	visited := st.visited

	s := newSlabMesh(lay)
	if st.shared == nil {
		st.shared = make(map[latticeEdge]int)
	}
	clear(st.shared)
	s.shared = st.shared
	s.keys = st.edgeKeys[:0]
	s.verts = make([]geom.Vec3, 0, st.lastVerts)
	s.faces = make([]Face, 0, st.lastFaces)

	gkey := func(i, j, k int) int64 {
		return packG(lay.base[0]+i, lay.base[1]+j, lay.base[2]+k)
	}

	next := st.next[:0]
	roots := st.roots[:0]
	enqueue := func(c cell3, root bool) {
		if c.i < 0 || c.j < 0 || c.k < 0 || c.i >= lay.nx || c.j >= lay.ny || c.k >= lay.nz {
			return
		}
		if root {
			// Roots anchor the reachability filter; record them even when
			// a previous-band enqueue got to the cell first.
			roots = append(roots, gkey(c.i, c.j, c.k))
		}
		if denseVis {
			li := (c.k*lay.ny+c.j)*lay.nx + c.i
			if vis[li] != 0 {
				return
			}
			vis[li] = 1
		} else {
			key := gkey(c.i, c.j, c.k)
			if visited[key] {
				return
			}
			visited[key] = true
		}
		next = append(next, c)
	}
	ring := func(c cell3, root bool) {
		for dk := -1; dk <= 1; dk++ {
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					enqueue(cell3{c.i + di, c.j + dj, c.k + dk}, root)
				}
			}
		}
	}

	if march {
		// Lattice-aligned seed marching: snap each seed to its nearest
		// lattice vertex and walk the six axis directions until the field
		// changes sign. Rays run concurrently with per-ray result
		// buffers; the merge walks rays in index order, so the sample
		// cache and the enqueue order are worker-count invariant.
		nRays := len(seeds) * 6
		for len(st.rays) < nRays {
			st.rays = append(st.rays, seedRay{})
		}
		rays := st.rays[:nRays]
		par.For(workers, nRays, func(r int) {
			ry := &rays[r]
			ry.keys, ry.out, ry.hit, ry.cross = ry.keys[:0], ry.out[:0], ry.hit[:0], ry.cross[:0]
			sd := seeds[r/6]
			dir := axisDirs[r%6]
			i := clampi(int(math.Round((sd.X-lay.origin.X)/lay.cell)), 0, lay.nx)
			j := clampi(int(math.Round((sd.Y-lay.origin.Y)/lay.cell)), 0, lay.ny)
			k := clampi(int(math.Round((sd.Z-lay.origin.Z)/lay.cell)), 0, lay.nz)
			eval := func(i, j, k int) float64 {
				key := gkey(i, j, k)
				pt := s.latticePoint(i, j, k)
				if usePrev {
					if ps := prevSlot(i, j, k); ps >= 0 {
						if sm := prevSamples[ps]; tf.Reusable(pt, sm.Val, sm.Aux) {
							ry.keys = append(ry.keys, key)
							ry.out = append(ry.out, sm)
							ry.hit = append(ry.hit, true)
							return sm.Val
						}
					}
				}
				v, a := tf.Eval(pt)
				ry.keys = append(ry.keys, key)
				ry.out = append(ry.out, Sample{v, a})
				ry.hit = append(ry.hit, false)
				return v
			}
			neg0 := eval(i, j, k) < 0
			// The start cell's ring covers seeds already on the surface
			// (and bones thinner than a cell, which may never produce a
			// lattice sign change along the ray).
			ry.cross = append(ry.cross, cell3{
				clampi(i, 0, lay.nx-1), clampi(j, 0, lay.ny-1), clampi(k, 0, lay.nz-1),
			})
			for step := 0; step < marchCap; step++ {
				ni, nj, nk := i+dir[0], j+dir[1], k+dir[2]
				if ni < 0 || nj < 0 || nk < 0 || ni > lay.nx || nj > lay.ny || nk > lay.nz {
					break
				}
				if (eval(ni, nj, nk) < 0) != neg0 {
					// The crossing lies on the edge between the two
					// vertices; ring-enqueue around the cell at the lower
					// vertex of that edge.
					li, lj, lk := i, j, k
					if dir[0] < 0 || dir[1] < 0 || dir[2] < 0 {
						li, lj, lk = ni, nj, nk
					}
					ry.cross = append(ry.cross, cell3{
						clampi(li, 0, lay.nx-1), clampi(lj, 0, lay.ny-1), clampi(lk, 0, lay.nz-1),
					})
					break
				}
				i, j, k = ni, nj, nk
			}
		})
		for r := range rays {
			ry := &rays[r]
			for n, key := range ry.keys {
				fresh := false
				if denseSlots {
					gi, gj, gk := unpackG(key)
					vi := ((gk-lay.base[2])*nVY+(gj-lay.base[1]))*nVX + (gi - lay.base[0])
					if slots[vi] == 0 {
						slots[vi] = int32(len(samples)) + 1
						fresh = true
					}
				} else if _, ok := values[key]; !ok {
					values[key] = int32(len(samples))
					fresh = true
				}
				if fresh {
					samples = append(samples, ry.out[n])
					if ry.hit[n] {
						st.Reused++
					} else {
						st.Evaluated++
					}
				}
			}
			for _, c := range ry.cross {
				ring(c, true)
			}
		}
	} else {
		for _, sd := range seeds {
			d := sd.Sub(lay.origin)
			c := cell3{int(d.X / lay.cell), int(d.Y / lay.cell), int(d.Z / lay.cell)}
			// Seed a small neighborhood to tolerate seeds slightly off
			// the surface.
			ring(c, true)
		}
	}

	if warm {
		// Seed the wavefront with the whole previous band: discovery then
		// finishes in a couple of rounds (one big batch plus the rim the
		// surface moved into) instead of one ring per round.
		for _, key := range st.band {
			gi, gj, gk := unpackG(key)
			enqueue(cell3{gi - lay.base[0], gj - lay.base[1], gk - lay.base[2]}, false)
		}
	}

	// Discovery: flood-fill across sign-crossing cubes, batching field
	// evaluation per wavefront round. Cells are recorded, not yet
	// polygonized — the band is sorted first so traversal order cannot
	// leak into the output.
	bf, batched := tf.(BatchField)
	front := st.front[:0]
	band := st.bandCells[:0]
	bandCorners := st.bandCorners[:0]
	needPts, needOut, needHit := st.needPts[:0], st.needOut[:0], st.needHit[:0]
	needIdx, needPrev := st.needIdx[:0], st.needPrev[:0]
	batchPts, batchOut, batchIdx := st.batchPts, st.batchOut, st.batchIdx
	cornerIdx := st.cornerIdx
	for len(next) > 0 {
		front, next = next, front[:0]

		// Gather: one slot probe per cube corner assigns (or finds) the
		// corner's arena slot; the 8 slots per frontier cube are recorded
		// so the sign test below reads the arena directly. The previous
		// frame's candidate slot is resolved here too, so the parallel
		// eval phase below runs entirely on flat arrays.
		needPts, needIdx, needPrev = needPts[:0], needIdx[:0], needPrev[:0]
		if cap(cornerIdx) < 8*len(front) {
			cornerIdx = make([]int32, 8*len(front))
		}
		cornerIdx = cornerIdx[:8*len(front)]
		for fi, c := range front {
			for ci, off := range cubeOffsets {
				i, j, k := c.i+off[0], c.j+off[1], c.k+off[2]
				var idx int32
				fresh := false
				if denseSlots {
					vi := (k*nVY+j)*nVX + i
					if sv := slots[vi]; sv != 0 {
						idx = sv - 1
					} else {
						idx = int32(len(samples))
						slots[vi] = idx + 1
						fresh = true
					}
				} else {
					key := gkey(i, j, k)
					var ok bool
					if idx, ok = values[key]; !ok {
						idx = int32(len(samples))
						values[key] = idx
						fresh = true
					}
				}
				if fresh {
					samples = append(samples, Sample{}) // placeholder; filled below
					needIdx = append(needIdx, idx)
					needPts = append(needPts, s.latticePoint(i, j, k))
					ps := int32(-1)
					if usePrev {
						ps = prevSlot(i, j, k)
					}
					needPrev = append(needPrev, ps)
				}
				cornerIdx[fi*8+ci] = idx
			}
		}
		if cap(needOut) < len(needIdx) {
			needOut = make([]Sample, len(needIdx))
			needHit = make([]bool, len(needIdx))
		}
		needOut, needHit = needOut[:len(needIdx)], needHit[:len(needIdx)]
		if batched {
			// Chunked evaluation through the field's batch entry point:
			// each worker owns a contiguous subrange of the round's
			// points, compacts the ones the previous frame cannot vouch
			// for, and evaluates them in a single EvalBatch call — a
			// whole chunk shares the field's per-call setup (and, for the
			// avatar SDF, its spatial candidate pruning). Every sample is
			// a pure function of its point, so neither the chunk
			// partition nor the worker count can affect the output.
			if cap(batchPts) < len(needIdx) {
				batchPts = make([]geom.Vec3, len(needIdx))
				batchOut = make([]Sample, len(needIdx))
				batchIdx = make([]int32, len(needIdx))
			}
			batchPts = batchPts[:len(needIdx)]
			batchOut = batchOut[:len(needIdx)]
			batchIdx = batchIdx[:len(needIdx)]
			par.ForChunks(workers, len(needIdx), func(_, lo, hi int) {
				m := lo
				for n := lo; n < hi; n++ {
					if ps := needPrev[n]; ps >= 0 {
						if sm := prevSamples[ps]; tf.Reusable(needPts[n], sm.Val, sm.Aux) {
							needOut[n], needHit[n] = sm, true
							continue
						}
					}
					batchPts[m], batchIdx[m] = needPts[n], int32(n)
					m++
				}
				if m > lo {
					bf.EvalBatch(batchPts[lo:m], batchOut[lo:m])
					for t := lo; t < m; t++ {
						needOut[batchIdx[t]], needHit[batchIdx[t]] = batchOut[t], false
					}
				}
			})
		} else {
			par.For(workers, len(needIdx), func(n int) {
				if ps := needPrev[n]; ps >= 0 {
					if sm := prevSamples[ps]; tf.Reusable(needPts[n], sm.Val, sm.Aux) {
						needOut[n], needHit[n] = sm, true
						return
					}
				}
				v, a := tf.Eval(needPts[n])
				needOut[n], needHit[n] = Sample{v, a}, false
			})
		}
		for n := range needIdx {
			samples[needIdx[n]] = needOut[n]
			if needHit[n] {
				st.Reused++
			} else {
				st.Evaluated++
			}
		}

		for fi, c := range front {
			base := fi * 8
			anyNeg, anyPos := false, false
			for ci := 0; ci < 8; ci++ {
				if samples[cornerIdx[base+ci]].Val < 0 {
					anyNeg = true
				} else {
					anyPos = true
				}
			}
			if !anyNeg || !anyPos {
				continue
			}
			band = append(band, c)
			bandCorners = append(bandCorners, cornerIdx[base:base+8]...)
			// The surface continues into face neighbors.
			for _, d := range axisDirs {
				enqueue(cell3{c.i + d[0], c.j + d[1], c.k + d[2]}, false)
			}
		}
	}

	if warm {
		// Reachability filter: keep only band cells connected to this
		// frame's seed cells through face-adjacent sign-crossing cells.
		// A cold run discovers exactly that set (expansion only ever
		// proceeds from sign-crossing cells, starting at the seed ring),
		// so the filtered warm band — over bitwise-identical sample
		// values — matches the cold band cell for cell.
		// The marks are a dense byte per lattice cell (the lattice is
		// bounded by Resolution³) so the flood fill runs on array
		// indexing; profiling shows map traffic dominates the warm path.
		n := lay.nx * lay.ny * lay.nz
		if cap(st.mark) < n {
			st.mark = make([]uint8, n)
		}
		mark := st.mark[:n]
		clear(mark)
		lidx := func(i, j, k int) int { return (k*lay.ny+j)*lay.nx + i }
		const (
			inBand uint8 = 1 // sign-crossing, not yet proven reachable
			kept   uint8 = 2 // reachable from a seed cell
		)
		for _, c := range band {
			mark[lidx(c.i, c.j, c.k)] = inBand
		}
		queue := st.queue[:0]
		for _, key := range roots {
			gi, gj, gk := unpackG(key)
			c := cell3{gi - lay.base[0], gj - lay.base[1], gk - lay.base[2]}
			if li := lidx(c.i, c.j, c.k); mark[li] == inBand {
				mark[li] = kept
				queue = append(queue, c)
			}
		}
		for len(queue) > 0 {
			c := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, d := range axisDirs {
				ni, nj, nk := c.i+d[0], c.j+d[1], c.k+d[2]
				if ni < 0 || nj < 0 || nk < 0 || ni >= lay.nx || nj >= lay.ny || nk >= lay.nz {
					continue
				}
				if li := lidx(ni, nj, nk); mark[li] == inBand {
					mark[li] = kept
					queue = append(queue, cell3{ni, nj, nk})
				}
			}
		}
		st.queue = queue
		keptBand := band[:0]
		keptCorners := bandCorners[:0]
		for bi, c := range band {
			if mark[lidx(c.i, c.j, c.k)] == kept {
				keptBand = append(keptBand, c)
				keptCorners = append(keptCorners, bandCorners[bi*8:bi*8+8]...)
			}
		}
		band, bandCorners = keptBand, keptCorners
	}

	// Polygonize in lattice scan order (z, then y, then x — the dense
	// extractor's cube order), making the mesh a pure function of the
	// band set and sample values. Each cell's recorded corner slots are
	// permuted along with it, so this loop is map-free.
	sort.Sort(bandOrder{band, bandCorners})
	for bi, c := range band {
		var vals [8]float64
		for ci := 0; ci < 8; ci++ {
			vals[ci] = samples[bandCorners[bi*8+ci]].Val
		}
		s.polygonizeCube(vals, c.i, c.j, c.k)
	}

	// Persist state for the next frame; on non-anchored grids only the
	// scratch arenas survive.
	st.front, st.next, st.roots = front, next, roots
	st.bandCells, st.bandCorners = band, bandCorners
	st.needPts, st.needOut, st.needHit = needPts, needOut, needHit
	st.needIdx, st.needPrev, st.cornerIdx = needIdx, needPrev, cornerIdx
	st.batchPts, st.batchOut, st.batchIdx = batchPts, batchOut, batchIdx
	st.curSamples = samples
	st.edgeKeys = s.keys
	st.lastVerts, st.lastFaces = len(s.verts), len(s.faces)
	if temporal {
		st.cell = lay.cell
		st.band = st.band[:0]
		for _, c := range band {
			st.band = append(st.band, gkey(c.i, c.j, c.k))
		}
		st.prevDense = denseSlots
		if denseSlots {
			st.slotDense, st.prevSlotDense = st.prevSlotDense, slots
			st.prevBase = lay.base
			st.prevVX, st.prevVY, st.prevVZ = nVX, nVY, nVZ
		} else {
			st.prev, st.cur = st.cur, st.prev
			if st.cur == nil {
				st.cur = make(map[int64]int32)
			}
		}
		st.prevSamples, st.curSamples = st.curSamples, st.prevSamples
	}
	return s.mesh()
}
