// Package mesh implements the triangle-mesh substrate: construction,
// normals, area/volume integrals, marching-cubes isosurface extraction,
// simplification, subdivision, and a compact text serialization. Meshes are
// the "traditional" holographic content representation that SemHolo's
// semantic pipelines are compared against, and the output format of the
// keypoint-based reconstruction path.
package mesh

import (
	"fmt"
	"math"

	"semholo/internal/geom"
)

// Face is a triangle referencing three vertex indices, counter-clockwise
// when viewed from outside the surface.
type Face struct {
	A, B, C int
}

// Mesh is an indexed triangle mesh. Normals and UVs are optional; when
// present they are per-vertex and parallel to Vertices.
type Mesh struct {
	Vertices []geom.Vec3
	Normals  []geom.Vec3
	UVs      []geom.Vec2
	Faces    []Face
}

// Clone returns a deep copy of m.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{
		Vertices: append([]geom.Vec3(nil), m.Vertices...),
		Faces:    append([]Face(nil), m.Faces...),
	}
	if m.Normals != nil {
		c.Normals = append([]geom.Vec3(nil), m.Normals...)
	}
	if m.UVs != nil {
		c.UVs = append([]geom.Vec2(nil), m.UVs...)
	}
	return c
}

// Validate checks structural invariants: every face references valid
// vertices and attribute arrays are either absent or parallel.
func (m *Mesh) Validate() error {
	n := len(m.Vertices)
	for i, f := range m.Faces {
		if f.A < 0 || f.A >= n || f.B < 0 || f.B >= n || f.C < 0 || f.C >= n {
			return fmt.Errorf("mesh: face %d references out-of-range vertex (%d,%d,%d) with %d vertices", i, f.A, f.B, f.C, n)
		}
		if f.A == f.B || f.B == f.C || f.A == f.C {
			return fmt.Errorf("mesh: face %d is degenerate (%d,%d,%d)", i, f.A, f.B, f.C)
		}
	}
	if m.Normals != nil && len(m.Normals) != n {
		return fmt.Errorf("mesh: %d normals for %d vertices", len(m.Normals), n)
	}
	if m.UVs != nil && len(m.UVs) != n {
		return fmt.Errorf("mesh: %d UVs for %d vertices", len(m.UVs), n)
	}
	return nil
}

// Bounds returns the axis-aligned bounding box of all vertices.
func (m *Mesh) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, v := range m.Vertices {
		b = b.Extend(v)
	}
	return b
}

// FaceNormal returns the (unit) geometric normal of face i.
func (m *Mesh) FaceNormal(i int) geom.Vec3 {
	f := m.Faces[i]
	a, b, c := m.Vertices[f.A], m.Vertices[f.B], m.Vertices[f.C]
	return b.Sub(a).Cross(c.Sub(a)).Normalize()
}

// FaceArea returns the area of face i.
func (m *Mesh) FaceArea(i int) float64 {
	f := m.Faces[i]
	a, b, c := m.Vertices[f.A], m.Vertices[f.B], m.Vertices[f.C]
	return 0.5 * b.Sub(a).Cross(c.Sub(a)).Len()
}

// FaceCentroid returns the centroid of face i.
func (m *Mesh) FaceCentroid(i int) geom.Vec3 {
	f := m.Faces[i]
	return m.Vertices[f.A].Add(m.Vertices[f.B]).Add(m.Vertices[f.C]).Scale(1.0 / 3.0)
}

// SurfaceArea returns the total surface area.
func (m *Mesh) SurfaceArea() float64 {
	var s float64
	for i := range m.Faces {
		s += m.FaceArea(i)
	}
	return s
}

// Volume returns the signed enclosed volume via the divergence theorem.
// It is only meaningful for closed, consistently oriented meshes.
func (m *Mesh) Volume() float64 {
	var v float64
	for _, f := range m.Faces {
		a, b, c := m.Vertices[f.A], m.Vertices[f.B], m.Vertices[f.C]
		v += a.Dot(b.Cross(c))
	}
	return v / 6
}

// ComputeNormals fills m.Normals with area-weighted vertex normals.
func (m *Mesh) ComputeNormals() {
	normals := make([]geom.Vec3, len(m.Vertices))
	for _, f := range m.Faces {
		a, b, c := m.Vertices[f.A], m.Vertices[f.B], m.Vertices[f.C]
		// Unnormalized cross product weights by twice the face area.
		n := b.Sub(a).Cross(c.Sub(a))
		normals[f.A] = normals[f.A].Add(n)
		normals[f.B] = normals[f.B].Add(n)
		normals[f.C] = normals[f.C].Add(n)
	}
	for i := range normals {
		normals[i] = normals[i].Normalize()
	}
	m.Normals = normals
}

// Transform applies a rigid/affine transform to all vertices (and rotates
// normals with the linear part, if present).
func (m *Mesh) Transform(t geom.Mat4) {
	for i, v := range m.Vertices {
		m.Vertices[i] = t.TransformPoint(v)
	}
	if m.Normals != nil {
		lin := t.Mat3()
		for i, n := range m.Normals {
			m.Normals[i] = lin.MulVec(n).Normalize()
		}
	}
}

// edgeKey identifies an undirected edge.
type edgeKey struct{ lo, hi int }

func mkEdge(a, b int) edgeKey {
	if a < b {
		return edgeKey{a, b}
	}
	return edgeKey{b, a}
}

// EdgeCount returns the number of distinct undirected edges.
func (m *Mesh) EdgeCount() int {
	edges := make(map[edgeKey]struct{}, len(m.Faces)*3/2)
	for _, f := range m.Faces {
		edges[mkEdge(f.A, f.B)] = struct{}{}
		edges[mkEdge(f.B, f.C)] = struct{}{}
		edges[mkEdge(f.C, f.A)] = struct{}{}
	}
	return len(edges)
}

// BoundaryEdges returns the number of edges used by exactly one face.
// Zero means the mesh is watertight (closed).
func (m *Mesh) BoundaryEdges() int {
	count := make(map[edgeKey]int, len(m.Faces)*3/2)
	for _, f := range m.Faces {
		count[mkEdge(f.A, f.B)]++
		count[mkEdge(f.B, f.C)]++
		count[mkEdge(f.C, f.A)]++
	}
	boundary := 0
	for _, c := range count {
		if c == 1 {
			boundary++
		}
	}
	return boundary
}

// IsWatertight reports whether every edge is shared by exactly two faces.
func (m *Mesh) IsWatertight() bool {
	count := make(map[edgeKey]int, len(m.Faces)*3/2)
	for _, f := range m.Faces {
		count[mkEdge(f.A, f.B)]++
		count[mkEdge(f.B, f.C)]++
		count[mkEdge(f.C, f.A)]++
	}
	for _, c := range count {
		if c != 2 {
			return false
		}
	}
	return len(count) > 0
}

// EulerCharacteristic returns V − E + F (2 for a sphere-topology mesh).
func (m *Mesh) EulerCharacteristic() int {
	return len(m.Vertices) - m.EdgeCount() + len(m.Faces)
}

// SamplePoints samples approximately n points uniformly over the surface
// using a deterministic low-discrepancy scheme (per-face stratification
// proportional to area). The rng-free determinism keeps experiment runs
// reproducible.
func (m *Mesh) SamplePoints(n int) []geom.Vec3 {
	total := m.SurfaceArea()
	if total <= 0 || n <= 0 {
		return nil
	}
	pts := make([]geom.Vec3, 0, n+len(m.Faces))
	carry := 0.0
	seq := 0
	for i, f := range m.Faces {
		want := m.FaceArea(i)/total*float64(n) + carry
		k := int(want)
		carry = want - float64(k)
		a, b, c := m.Vertices[f.A], m.Vertices[f.B], m.Vertices[f.C]
		for j := 0; j < k; j++ {
			// Halton-style (base 2, 3) barycentric samples.
			u := halton(seq, 2)
			v := halton(seq, 3)
			seq++
			if u+v > 1 {
				u, v = 1-u, 1-v
			}
			p := a.Scale(1 - u - v).Add(b.Scale(u)).Add(c.Scale(v))
			pts = append(pts, p)
		}
	}
	return pts
}

func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// UnitSphere generates a watertight unit-sphere mesh by subdividing an
// icosahedron `level` times and projecting to the sphere. Used pervasively
// in tests and as a primitive for the procedural human body.
func UnitSphere(level int) *Mesh {
	// Icosahedron.
	t := (1 + math.Sqrt(5)) / 2
	verts := []geom.Vec3{
		{X: -1, Y: t}, {X: 1, Y: t}, {X: -1, Y: -t}, {X: 1, Y: -t},
		{Y: -1, Z: t}, {Y: 1, Z: t}, {Y: -1, Z: -t}, {Y: 1, Z: -t},
		{X: t, Z: -1}, {X: t, Z: 1}, {X: -t, Z: -1}, {X: -t, Z: 1},
	}
	faces := []Face{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	m := &Mesh{Vertices: verts, Faces: faces}
	for i := range m.Vertices {
		m.Vertices[i] = m.Vertices[i].Normalize()
	}
	for l := 0; l < level; l++ {
		m = m.SubdivideMidpoint()
		for i := range m.Vertices {
			m.Vertices[i] = m.Vertices[i].Normalize()
		}
	}
	m.ComputeNormals()
	return m
}

// SubdivideMidpoint performs one round of 1:4 midpoint subdivision,
// sharing midpoint vertices between adjacent faces.
func (m *Mesh) SubdivideMidpoint() *Mesh {
	out := &Mesh{Vertices: append([]geom.Vec3(nil), m.Vertices...)}
	mid := make(map[edgeKey]int)
	midpoint := func(a, b int) int {
		k := mkEdge(a, b)
		if idx, ok := mid[k]; ok {
			return idx
		}
		idx := len(out.Vertices)
		out.Vertices = append(out.Vertices, m.Vertices[a].Lerp(m.Vertices[b], 0.5))
		mid[k] = idx
		return idx
	}
	out.Faces = make([]Face, 0, len(m.Faces)*4)
	for _, f := range m.Faces {
		ab := midpoint(f.A, f.B)
		bc := midpoint(f.B, f.C)
		ca := midpoint(f.C, f.A)
		out.Faces = append(out.Faces,
			Face{f.A, ab, ca},
			Face{f.B, bc, ab},
			Face{f.C, ca, bc},
			Face{ab, bc, ca},
		)
	}
	return out
}

// Merge appends other's geometry into m, offsetting face indices.
func (m *Mesh) Merge(other *Mesh) {
	off := len(m.Vertices)
	m.Vertices = append(m.Vertices, other.Vertices...)
	for _, f := range other.Faces {
		m.Faces = append(m.Faces, Face{f.A + off, f.B + off, f.C + off})
	}
	switch {
	case m.Normals != nil && other.Normals != nil:
		m.Normals = append(m.Normals, other.Normals...)
	case m.Normals != nil:
		m.Normals = nil // attribute no longer parallel; drop it
	}
	switch {
	case m.UVs != nil && other.UVs != nil:
		m.UVs = append(m.UVs, other.UVs...)
	case m.UVs != nil:
		m.UVs = nil
	}
}
