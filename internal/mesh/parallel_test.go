package mesh

import (
	"math"
	"reflect"
	"testing"

	"semholo/internal/geom"
)

// twoBlobSDF is a smooth union of two spheres — asymmetric along every
// axis so slab boundaries cut through real geometry.
func twoBlobSDF() ScalarField {
	c1, r1 := geom.V3(-0.4, 0.1, -0.3), 0.55
	c2, r2 := geom.V3(0.5, -0.2, 0.35), 0.4
	return func(p geom.Vec3) float64 {
		a := p.Dist(c1) - r1
		b := p.Dist(c2) - r2
		// Polynomial smooth minimum, k = 0.1.
		const k = 0.1
		h := geom.Clamp(0.5+0.5*(b-a)/k, 0, 1)
		return b + (a-b)*h - k*h*(1-h)
	}
}

func testGrid(res int) GridSpec {
	return GridSpec{
		Bounds:     geom.NewAABB(geom.V3(-1.2, -1.1, -1.3), geom.V3(1.3, 1.1, 1.2)),
		Resolution: res,
	}
}

// TestExtractIsosurfaceParallelDeterministic is the dense-path
// determinism regression: for every worker count the mesh must be
// byte-identical (same vertex order, same positions, same faces) to the
// serial path.
func TestExtractIsosurfaceParallelDeterministic(t *testing.T) {
	field := twoBlobSDF()
	grid := testGrid(40)
	serial := ExtractIsosurfaceParallel(field, grid, 1)
	if len(serial.Faces) == 0 {
		t.Fatal("serial extraction produced no faces")
	}
	for _, workers := range []int{2, 3, 4, 7, 16} {
		got := ExtractIsosurfaceParallel(field, grid, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d output differs from serial: %d/%d vertices, %d/%d faces",
				workers, len(got.Vertices), len(serial.Vertices), len(got.Faces), len(serial.Faces))
		}
	}
}

// TestExtractIsosurfaceMatchesLegacySerial pins the refactored slab
// extractor to the original single-pass algorithm's invariants on a
// sphere: watertight, on-surface vertices, correct area.
func TestExtractIsosurfaceMatchesLegacySerial(t *testing.T) {
	grid := GridSpec{
		Bounds:     geom.NewAABB(geom.V3(-1.5, -1.5, -1.5), geom.V3(1.5, 1.5, 1.5)),
		Resolution: 24,
	}
	for _, workers := range []int{1, 4} {
		m := ExtractIsosurfaceParallel(sphereSDF(geom.Vec3{}, 1), grid, workers)
		if err := m.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !m.IsWatertight() {
			t.Errorf("workers=%d: not watertight (%d boundary edges)", workers, m.BoundaryEdges())
		}
		if a := m.SurfaceArea(); math.Abs(a-4*math.Pi)/(4*math.Pi) > 0.12 {
			t.Errorf("workers=%d: area %v, want ≈ %v", workers, a, 4*math.Pi)
		}
	}
}

// TestExtractIsosurfaceSparseParallelDeterministic is the narrow-band
// determinism regression: worker count must not change the output at all.
func TestExtractIsosurfaceSparseParallelDeterministic(t *testing.T) {
	field := twoBlobSDF()
	grid := testGrid(36)
	seeds := []geom.Vec3{geom.V3(-0.4, 0.1, 0.25), geom.V3(0.5, -0.2, -0.05)}
	serial := ExtractIsosurfaceSparseParallel(field, grid, seeds, 1)
	if len(serial.Faces) == 0 {
		t.Fatal("serial sparse extraction produced no faces")
	}
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 9} {
		got := ExtractIsosurfaceSparseParallel(field, grid, seeds, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d sparse output differs from serial: %d/%d vertices, %d/%d faces",
				workers, len(got.Vertices), len(serial.Vertices), len(got.Faces), len(serial.Faces))
		}
	}
}

// TestSparseMatchesDenseGeometry checks that the wavefront sparse
// extractor still recovers the same surface as the dense sweep (same
// lattice, same field ⇒ same vertex set up to ordering).
func TestSparseMatchesDenseGeometry(t *testing.T) {
	field := twoBlobSDF()
	grid := testGrid(28)
	dense := ExtractIsosurface(field, grid)
	sparse := ExtractIsosurfaceSparse(field, grid, []geom.Vec3{geom.V3(-0.4, 0.1, 0.25), geom.V3(0.5, -0.2, -0.05)})
	if len(sparse.Vertices) != len(dense.Vertices) || len(sparse.Faces) != len(dense.Faces) {
		t.Fatalf("sparse %dv/%df vs dense %dv/%df",
			len(sparse.Vertices), len(sparse.Faces), len(dense.Vertices), len(dense.Faces))
	}
	// Same vertex set, order-insensitively: match each sparse vertex to
	// its nearest dense vertex exactly.
	seen := make(map[geom.Vec3]int)
	for _, v := range dense.Vertices {
		seen[v]++
	}
	for _, v := range sparse.Vertices {
		if seen[v] == 0 {
			t.Fatalf("sparse vertex %v missing from dense extraction", v)
		}
		seen[v]--
	}
}
