package mesh

// Tests for the batched evaluation path: a field that implements
// BatchField must extract byte-identically to the same field evaluated
// point-by-point, through both the dense extractor and the temporal
// sparse extractor, at every worker count.

import (
	"reflect"
	"testing"

	"semholo/internal/geom"
)

// batchSpheres wraps twoSpheres with an EvalBatch that delegates to Eval,
// making it a BatchField with trivially identical semantics.
type batchSpheres struct{ twoSpheres }

func (f *batchSpheres) EvalBatch(pts []geom.Vec3, out []Sample) {
	for i, p := range pts {
		v, a := f.Eval(p)
		out[i] = Sample{Val: v, Aux: a}
	}
}

func TestSparseBatchMatchesScalar(t *testing.T) {
	grid := temporalGrid()
	for _, workers := range []int{1, 2, 4} {
		plain := temporalFrame(0)
		batch := &batchSpheres{twoSpheres: *temporalFrame(0)}
		pm := ExtractIsosurfaceSparseTemporal(plain, grid, temporalSeeds(plain), workers, nil)
		bm := ExtractIsosurfaceSparseTemporal(batch, grid, temporalSeeds(plain), workers, nil)
		if !reflect.DeepEqual(pm, bm) {
			t.Fatalf("workers=%d: batch-field sparse mesh differs from scalar path (%d/%d verts)",
				workers, len(bm.Vertices), len(pm.Vertices))
		}
	}
}

func TestSparseBatchWarmMatchesCold(t *testing.T) {
	grid := temporalGrid()
	st := &SparseState{}
	for i := 0; i < 8; i++ {
		f := &batchSpheres{twoSpheres: *temporalFrame(i)}
		warm := ExtractIsosurfaceSparseTemporal(f, grid, temporalSeeds(&f.twoSpheres), 3, st)
		coldF := &batchSpheres{twoSpheres: *temporalFrame(i)}
		coldF.warm = false
		cold := ExtractIsosurfaceSparseTemporal(coldF, grid, temporalSeeds(&coldF.twoSpheres), 1, nil)
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("frame %d: warm batch mesh differs from cold", i)
		}
		if i > 0 && st.Reused == 0 {
			t.Fatalf("frame %d: batch path disabled exact sample reuse", i)
		}
	}
}

func TestDenseBatchMatchesScalar(t *testing.T) {
	grid := GridSpec{
		Bounds:     geom.NewAABB(geom.V3(-1, -0.8, -0.8), geom.V3(1, 0.8, 0.8)),
		Resolution: 24,
	}
	f := &batchSpheres{twoSpheres: *temporalFrame(0)}
	scalar := func(p geom.Vec3) float64 {
		v, _ := f.Eval(p)
		return v
	}
	for _, workers := range []int{1, 2, 4} {
		want := ExtractIsosurfaceParallel(scalar, grid, workers)
		got := ExtractIsosurfaceBatch(f, grid, workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: batched dense mesh differs from scalar dense mesh", workers)
		}
	}
}
