package mesh

import (
	"math"
	"sync"

	"semholo/internal/geom"
	"semholo/internal/par"
)

// ScalarField is a signed scalar function over 3D space. By SDF
// convention, negative values are inside the surface and positive values
// outside; the isosurface is the zero level set.
//
// Fields must be safe for concurrent calls: the parallel extractors
// evaluate lattice points from multiple goroutines. Pure functions of
// the input point (like the avatar capsule SDF) satisfy this trivially.
type ScalarField func(p geom.Vec3) float64

// GridSpec describes the sampling lattice for isosurface extraction.
// Resolution is the number of cells along the longest axis of Bounds —
// this matches the paper's "output resolution" knob (128/256/512/1024
// voxels per dimension) whose cost grows as O(Resolution³).
type GridSpec struct {
	Bounds     geom.AABB
	Resolution int

	// Cell, when > 0, fixes the lattice spacing explicitly (Resolution is
	// then ignored) and anchors the lattice to world space: Bounds.Min is
	// snapped down to an integer multiple of Cell and every lattice point
	// is computed as float64(globalIndex)·Cell. A world point shared by
	// two anchored grids is therefore bitwise-identical in both, even
	// when their bounds differ — the property the temporal-coherence
	// cache needs to reuse samples across frames whose grids drift.
	Cell float64
}

// gridLayout is a GridSpec resolved to concrete lattice parameters.
type gridLayout struct {
	nx, ny, nz int       // cells per axis
	vx, vy     int       // lattice vertices per x/y axis (nx+1, ny+1)
	cell       float64   // cube edge length
	origin     geom.Vec3 // world position of lattice vertex (0,0,0)
	base       [3]int    // origin's integer coords on the world lattice
	anchored   bool      // Cell-anchored (base meaningful) vs bounds-derived
}

// layout resolves the grid. ok is false when the spec cannot produce a
// non-empty lattice (empty bounds, or neither Cell nor Resolution set).
func (g GridSpec) layout() (l gridLayout, ok bool) {
	size := g.Bounds.Size()
	if g.Cell > 0 {
		if g.Bounds.IsEmpty() {
			return l, false
		}
		l.cell = g.Cell
		l.anchored = true
		min := [3]float64{g.Bounds.Min.X, g.Bounds.Min.Y, g.Bounds.Min.Z}
		max := [3]float64{g.Bounds.Max.X, g.Bounds.Max.Y, g.Bounds.Max.Z}
		var n [3]int
		for a := 0; a < 3; a++ {
			l.base[a] = int(math.Floor(min[a] / l.cell))
			n[a] = int(math.Ceil(max[a]/l.cell)) - l.base[a]
			if n[a] < 1 {
				n[a] = 1
			}
		}
		l.nx, l.ny, l.nz = n[0], n[1], n[2]
		l.origin = geom.Vec3{
			X: float64(l.base[0]) * l.cell,
			Y: float64(l.base[1]) * l.cell,
			Z: float64(l.base[2]) * l.cell,
		}
		l.vx, l.vy = l.nx+1, l.ny+1
		return l, true
	}
	longest := size.MaxComponent()
	if longest <= 0 || g.Resolution <= 0 {
		return l, false
	}
	l.cell = longest / float64(g.Resolution)
	dims := func(extent float64) int {
		n := int(extent/l.cell + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	l.nx, l.ny, l.nz = dims(size.X), dims(size.Y), dims(size.Z)
	l.origin = g.Bounds.Min
	l.vx, l.vy = l.nx+1, l.ny+1
	return l, true
}

// latticeEdge identifies the lattice edge an interpolated vertex lies
// on, by the linear indices of its two lattice endpoints (lo < hi).
// Edge identity is global across slabs, which is what makes the
// parallel merge deterministic.
type latticeEdge struct{ lo, hi int }

// corner offsets of a unit cube, in the conventional order.
var cubeOffsets = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
}

// Six tetrahedra sharing the body diagonal (corner 0 → corner 6).
var cubeTets = [6][4]int{
	{0, 5, 1, 6},
	{0, 1, 2, 6},
	{0, 2, 3, 6},
	{0, 3, 7, 6},
	{0, 7, 4, 6},
	{0, 4, 5, 6},
}

// slabMesh accumulates polygonization output for one contiguous range of
// z-slabs: vertices (with the lattice edge each lies on, for cross-slab
// dedup), faces over local vertex indices, and the slab-local edge→vertex
// map. Serial extraction uses a single slabMesh covering the whole grid;
// parallel extraction builds one per slab and merges them in slab order.
type slabMesh struct {
	verts  []geom.Vec3
	keys   []latticeEdge
	faces  []Face
	shared map[latticeEdge]int

	origin   geom.Vec3
	cell     float64
	vx, vy   int
	base     [3]int
	anchored bool
}

func newSlabMesh(l gridLayout) *slabMesh {
	return &slabMesh{
		shared:   make(map[latticeEdge]int),
		origin:   l.origin,
		cell:     l.cell,
		vx:       l.vx,
		vy:       l.vy,
		base:     l.base,
		anchored: l.anchored,
	}
}

func (s *slabMesh) latticePoint(i, j, k int) geom.Vec3 {
	if s.anchored {
		// Anchored grids compute coordinates from global integer lattice
		// indices so the same world point is bitwise-identical across
		// frames whose grid bounds (and hence base) differ.
		return geom.Vec3{
			X: float64(s.base[0]+i) * s.cell,
			Y: float64(s.base[1]+j) * s.cell,
			Z: float64(s.base[2]+k) * s.cell,
		}
	}
	return geom.Vec3{
		X: s.origin.X + float64(i)*s.cell,
		Y: s.origin.Y + float64(j)*s.cell,
		Z: s.origin.Z + float64(k)*s.cell,
	}
}

// lidx linearizes a lattice vertex over (vx, vy, ·); k is global, so
// indices agree across slabs.
func (s *slabMesh) lidx(i, j, k int) int { return (k*s.vy+j)*s.vx + i }

// edgeVertex returns the local index of the interpolated vertex on the
// lattice edge (la, lb), creating it on first use.
func (s *slabMesh) edgeVertex(la, lb int, pa, pb geom.Vec3, va, vb float64) int {
	key := latticeEdge{la, lb}
	if la > lb {
		key = latticeEdge{lb, la}
	}
	if idx, ok := s.shared[key]; ok {
		return idx
	}
	t := 0.5
	if d := va - vb; d != 0 {
		t = va / d
	}
	t = geom.Clamp(t, 0, 1)
	idx := len(s.verts)
	s.verts = append(s.verts, pa.Lerp(pb, t))
	s.keys = append(s.keys, key)
	s.shared[key] = idx
	return idx
}

// emit adds a triangle oriented so its normal points from inside
// (negative field) toward outside (positive field).
func (s *slabMesh) emit(a, b, c int, outward geom.Vec3) {
	pa, pb, pc := s.verts[a], s.verts[b], s.verts[c]
	n := pb.Sub(pa).Cross(pc.Sub(pa))
	if n.Dot(outward) < 0 {
		b, c = c, b
	}
	if a == b || b == c || a == c {
		return
	}
	s.faces = append(s.faces, Face{a, b, c})
}

// polygonizeCube runs marching tetrahedra on the cube at (i, j, k) whose
// corner values (cubeOffsets order) are vals.
func (s *slabMesh) polygonizeCube(vals [8]float64, i, j, k int) {
	for _, tet := range cubeTets {
		s.polygonizeTet(tet, vals, i, j, k)
	}
}

// polygonizeTet emits 0–2 triangles for one tetrahedron of a cube.
func (s *slabMesh) polygonizeTet(tet [4]int, vals [8]float64, ci, cj, ck int) {
	var inside, outside [4]int
	ni, no := 0, 0
	for _, c := range tet {
		if vals[c] < 0 {
			inside[ni] = c
			ni++
		} else {
			outside[no] = c
			no++
		}
	}
	if ni == 0 || ni == 4 {
		return
	}
	corner := func(c int) (int, geom.Vec3) {
		off := cubeOffsets[c]
		i, j, k := ci+off[0], cj+off[1], ck+off[2]
		return s.lidx(i, j, k), s.latticePoint(i, j, k)
	}
	cut := func(a, b int) int {
		la, pa := corner(a)
		lb, pb := corner(b)
		return s.edgeVertex(la, lb, pa, pb, vals[a], vals[b])
	}
	centroidOf := func(ids ...int) geom.Vec3 {
		var sum geom.Vec3
		for _, id := range ids {
			sum = sum.Add(s.verts[id])
		}
		return sum.Scale(1 / float64(len(ids)))
	}
	switch ni {
	case 1:
		in := inside[0]
		a := cut(in, outside[0])
		b := cut(in, outside[1])
		c := cut(in, outside[2])
		_, pin := corner(in)
		s.emit(a, b, c, centroidOf(a, b, c).Sub(pin))
	case 3:
		outv := outside[0]
		a := cut(inside[0], outv)
		b := cut(inside[1], outv)
		c := cut(inside[2], outv)
		_, pout := corner(outv)
		s.emit(a, b, c, pout.Sub(centroidOf(a, b, c)))
	case 2:
		i0, i1 := inside[0], inside[1]
		o0, o1 := outside[0], outside[1]
		a := cut(i0, o0)
		b := cut(i0, o1)
		c := cut(i1, o1)
		d := cut(i1, o0)
		_, p0 := corner(i0)
		_, p1 := corner(i1)
		insideMid := p0.Lerp(p1, 0.5)
		s.emit(a, b, c, centroidOf(a, b, c).Sub(insideMid))
		s.emit(a, c, d, centroidOf(a, c, d).Sub(insideMid))
	}
}

// mesh converts the accumulated slab into a Mesh, reusing the slab's
// backing arrays (valid for a single slab covering the whole grid).
func (s *slabMesh) mesh() *Mesh {
	return &Mesh{Vertices: s.verts, Faces: s.faces}
}

// slabBufPool recycles the per-slab sample planes ([]float64 of vx·vy)
// across extractions, so steady-state reconstruction loops stop
// allocating lattice scratch.
var slabBufPool sync.Pool

func getSlabBuf(n int) []float64 {
	if v := slabBufPool.Get(); v != nil {
		if buf := v.([]float64); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

func putSlabBuf(buf []float64) { slabBufPool.Put(buf) }

// ExtractIsosurface polygonizes the zero level set of field over the grid
// using marching tetrahedra. The result shares interpolated vertices along
// lattice edges, so the output is watertight wherever the surface does not
// leave the grid bounds. Cost is Θ(nx·ny·nz) field evaluations — the
// O(Resolution³) scaling that dominates the paper's Figure 4.
//
// This is the strict serial path: ExtractIsosurfaceParallel(field, grid, 1).
func ExtractIsosurface(field ScalarField, grid GridSpec) *Mesh {
	return ExtractIsosurfaceParallel(field, grid, 1)
}

// ExtractIsosurfaceParallel is ExtractIsosurface with the cell grid split
// into contiguous z-slab ranges extracted concurrently by up to workers
// goroutines (workers <= 0 means GOMAXPROCS; 1 is the serial fallback).
// Each slab polygonizes with its own vertex-dedup map; slabs are then
// merged in z order, deduplicating boundary vertices by their global
// lattice-edge key. Because cube visit order within a slab matches the
// serial scan and the merge walks slabs in ascending z, the output is
// byte-identical to the serial path for every worker count.
func ExtractIsosurfaceParallel(field ScalarField, grid GridSpec, workers int) *Mesh {
	lay, ok := grid.layout()
	if !ok {
		return &Mesh{}
	}
	ranges := par.Split(workers, lay.nz)
	slabs := make([]*slabMesh, len(ranges))
	par.For(len(ranges), len(ranges), func(c int) {
		slabs[c] = extractSlabRange(field, lay, ranges[c].Lo, ranges[c].Hi)
	})
	if len(slabs) == 1 {
		return slabs[0].mesh()
	}
	return mergeSlabs(slabs)
}

// extractSlabRange polygonizes cubes with k in [k0, k1).
func extractSlabRange(field ScalarField, lay gridLayout, k0, k1 int) *slabMesh {
	nx, ny, vx, vy := lay.nx, lay.ny, lay.vx, lay.vy
	s := newSlabMesh(lay)
	cur := getSlabBuf(vx * vy)
	next := getSlabBuf(vx * vy)
	defer putSlabBuf(cur)
	defer putSlabBuf(next)

	sampleSlab := func(k int, dst []float64) {
		for j := 0; j < vy; j++ {
			for i := 0; i < vx; i++ {
				dst[j*vx+i] = field(s.latticePoint(i, j, k))
			}
		}
	}
	sampleSlab(k0, cur)
	for k := k0; k < k1; k++ {
		sampleSlab(k+1, next)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				// Gather the cube's corner values; skip cubes the
				// surface cannot cross.
				var vals [8]float64
				anyNeg, anyPos := false, false
				for c, off := range cubeOffsets {
					var v float64
					if off[2] == 0 {
						v = cur[(j+off[1])*vx+i+off[0]]
					} else {
						v = next[(j+off[1])*vx+i+off[0]]
					}
					vals[c] = v
					if v < 0 {
						anyNeg = true
					} else {
						anyPos = true
					}
				}
				if !anyNeg || !anyPos {
					continue
				}
				s.polygonizeCube(vals, i, j, k)
			}
		}
		cur, next = next, cur
	}
	return s
}

// mergeSlabs concatenates slab meshes in z order into one Mesh,
// deduplicating vertices shared across slab boundaries by lattice-edge
// key. Vertex and face order match a serial full-grid extraction.
func mergeSlabs(slabs []*slabMesh) *Mesh {
	totalV, totalF := 0, 0
	for _, s := range slabs {
		totalV += len(s.verts)
		totalF += len(s.faces)
	}
	out := &Mesh{
		Vertices: make([]geom.Vec3, 0, totalV),
		Faces:    make([]Face, 0, totalF),
	}
	global := make(map[latticeEdge]int, totalV)
	for _, s := range slabs {
		remap := make([]int, len(s.verts))
		for li, key := range s.keys {
			if gi, ok := global[key]; ok {
				remap[li] = gi
				continue
			}
			gi := len(out.Vertices)
			out.Vertices = append(out.Vertices, s.verts[li])
			global[key] = gi
			remap[li] = gi
		}
		for _, f := range s.faces {
			out.Faces = append(out.Faces, Face{remap[f.A], remap[f.B], remap[f.C]})
		}
	}
	return out
}
