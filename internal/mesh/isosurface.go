package mesh

import (
	"semholo/internal/geom"
)

// ScalarField is a signed scalar function over 3D space. By SDF
// convention, negative values are inside the surface and positive values
// outside; the isosurface is the zero level set.
type ScalarField func(p geom.Vec3) float64

// GridSpec describes the sampling lattice for isosurface extraction.
// Resolution is the number of cells along the longest axis of Bounds —
// this matches the paper's "output resolution" knob (128/256/512/1024
// voxels per dimension) whose cost grows as O(Resolution³).
type GridSpec struct {
	Bounds     geom.AABB
	Resolution int
}

// cellCounts returns the number of cells per axis so that cells are cubes
// of equal size with Resolution cells along the longest axis.
func (g GridSpec) cellCounts() (nx, ny, nz int, cell float64) {
	size := g.Bounds.Size()
	longest := size.MaxComponent()
	if longest <= 0 || g.Resolution <= 0 {
		return 0, 0, 0, 0
	}
	cell = longest / float64(g.Resolution)
	dims := func(extent float64) int {
		n := int(extent/cell + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	return dims(size.X), dims(size.Y), dims(size.Z), cell
}

// ExtractIsosurface polygonizes the zero level set of field over the grid
// using marching tetrahedra. The result shares interpolated vertices along
// lattice edges, so the output is watertight wherever the surface does not
// leave the grid bounds. Cost is Θ(nx·ny·nz) field evaluations — the
// O(Resolution³) scaling that dominates the paper's Figure 4.
func ExtractIsosurface(field ScalarField, grid GridSpec) *Mesh {
	nx, ny, nz, cell := grid.cellCounts()
	if nx == 0 {
		return &Mesh{}
	}
	// Sample the field at lattice points, one z-slab pair at a time to
	// bound memory at O(nx·ny) regardless of resolution.
	vx, vy := nx+1, ny+1
	origin := grid.Bounds.Min

	latticePoint := func(i, j, k int) geom.Vec3 {
		return geom.Vec3{
			X: origin.X + float64(i)*cell,
			Y: origin.Y + float64(j)*cell,
			Z: origin.Z + float64(k)*cell,
		}
	}
	sampleSlab := func(k int, dst []float64) {
		for j := 0; j < vy; j++ {
			for i := 0; i < vx; i++ {
				dst[j*vx+i] = field(latticePoint(i, j, k))
			}
		}
	}

	slabA := make([]float64, vx*vy)
	slabB := make([]float64, vx*vy)
	sampleSlab(0, slabA)

	out := &Mesh{}
	// Shared interpolated vertices, keyed by the lattice edge they lie on.
	// Lattice vertices are identified by a linear index over (vx,vy,nz+1).
	type latticeEdge struct{ lo, hi int }
	shared := make(map[latticeEdge]int)
	lidx := func(i, j, k int) int { return (k*vy+j)*vx + i }

	// corner offsets of a unit cube, in the conventional order
	cubeOff := [8][3]int{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	// Six tetrahedra sharing the body diagonal (corner 0 → corner 6).
	tets := [6][4]int{
		{0, 5, 1, 6},
		{0, 1, 2, 6},
		{0, 2, 3, 6},
		{0, 3, 7, 6},
		{0, 7, 4, 6},
		{0, 4, 5, 6},
	}

	edgeVertex := func(la, lb int, pa, pb geom.Vec3, va, vb float64) int {
		key := latticeEdge{la, lb}
		if la > lb {
			key = latticeEdge{lb, la}
		}
		if idx, ok := shared[key]; ok {
			return idx
		}
		t := 0.5
		if d := va - vb; d != 0 {
			t = va / d
		}
		t = geom.Clamp(t, 0, 1)
		idx := len(out.Vertices)
		out.Vertices = append(out.Vertices, pa.Lerp(pb, t))
		shared[key] = idx
		return idx
	}

	// emit adds a triangle oriented so its normal points from inside
	// (negative field) toward outside (positive field).
	emit := func(a, b, c int, outward geom.Vec3) {
		pa, pb, pc := out.Vertices[a], out.Vertices[b], out.Vertices[c]
		n := pb.Sub(pa).Cross(pc.Sub(pa))
		if n.Dot(outward) < 0 {
			b, c = c, b
		}
		if a == b || b == c || a == c {
			return
		}
		out.Faces = append(out.Faces, Face{a, b, c})
	}

	cur, next := slabA, slabB
	for k := 0; k < nz; k++ {
		sampleSlab(k+1, next)
		slabVal := func(i, j, dk int) float64 {
			if dk == 0 {
				return cur[j*vx+i]
			}
			return next[j*vx+i]
		}
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				// Gather the cube's corner values; skip cubes the
				// surface cannot cross.
				var vals [8]float64
				anyNeg, anyPos := false, false
				for c, off := range cubeOff {
					v := slabVal(i+off[0], j+off[1], off[2])
					vals[c] = v
					if v < 0 {
						anyNeg = true
					} else {
						anyPos = true
					}
				}
				if !anyNeg || !anyPos {
					continue
				}
				for _, tet := range tets {
					polygonizeTet(out, tet, vals, i, j, k, cubeOff, latticePoint, lidx, edgeVertex, emit)
				}
			}
		}
		cur, next = next, cur
	}
	return out
}

// polygonizeTet emits 0–2 triangles for one tetrahedron of a cube.
func polygonizeTet(
	out *Mesh,
	tet [4]int,
	vals [8]float64,
	ci, cj, ck int,
	cubeOff [8][3]int,
	latticePoint func(i, j, k int) geom.Vec3,
	lidx func(i, j, k int) int,
	edgeVertex func(la, lb int, pa, pb geom.Vec3, va, vb float64) int,
	emit func(a, b, c int, outward geom.Vec3),
) {
	var inside, outside []int
	for _, c := range tet {
		if vals[c] < 0 {
			inside = append(inside, c)
		} else {
			outside = append(outside, c)
		}
	}
	if len(inside) == 0 || len(inside) == 4 {
		return
	}
	corner := func(c int) (int, geom.Vec3) {
		off := cubeOff[c]
		i, j, k := ci+off[0], cj+off[1], ck+off[2]
		return lidx(i, j, k), latticePoint(i, j, k)
	}
	cut := func(a, b int) int {
		la, pa := corner(a)
		lb, pb := corner(b)
		return edgeVertex(la, lb, pa, pb, vals[a], vals[b])
	}
	centroidOf := func(ids ...int) geom.Vec3 {
		var s geom.Vec3
		for _, id := range ids {
			s = s.Add(out.Vertices[id])
		}
		return s.Scale(1 / float64(len(ids)))
	}
	switch len(inside) {
	case 1:
		in := inside[0]
		a := cut(in, outside[0])
		b := cut(in, outside[1])
		c := cut(in, outside[2])
		_, pin := corner(in)
		emit(a, b, c, centroidOf(a, b, c).Sub(pin))
	case 3:
		outv := outside[0]
		a := cut(inside[0], outv)
		b := cut(inside[1], outv)
		c := cut(inside[2], outv)
		_, pout := corner(outv)
		emit(a, b, c, pout.Sub(centroidOf(a, b, c)))
	case 2:
		i0, i1 := inside[0], inside[1]
		o0, o1 := outside[0], outside[1]
		a := cut(i0, o0)
		b := cut(i0, o1)
		c := cut(i1, o1)
		d := cut(i1, o0)
		_, p0 := corner(i0)
		_, p1 := corner(i1)
		insideMid := p0.Lerp(p1, 0.5)
		emit(a, b, c, centroidOf(a, b, c).Sub(insideMid))
		emit(a, c, d, centroidOf(a, c, d).Sub(insideMid))
	}
}
