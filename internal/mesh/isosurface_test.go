package mesh

import (
	"math"
	"testing"

	"semholo/internal/geom"
)

func sphereSDF(center geom.Vec3, r float64) ScalarField {
	return func(p geom.Vec3) float64 { return p.Dist(center) - r }
}

func TestIsosurfaceSphere(t *testing.T) {
	grid := GridSpec{
		Bounds:     geom.NewAABB(geom.V3(-1.5, -1.5, -1.5), geom.V3(1.5, 1.5, 1.5)),
		Resolution: 32,
	}
	m := ExtractIsosurface(sphereSDF(geom.Vec3{}, 1), grid)
	if len(m.Faces) == 0 {
		t.Fatal("no faces extracted")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid mesh: %v", err)
	}
	if !m.IsWatertight() {
		t.Errorf("sphere isosurface not watertight (%d boundary edges)", m.BoundaryEdges())
	}
	// Every vertex must be near the true surface (within a cell diagonal).
	cell := 3.0 / 32
	for _, v := range m.Vertices {
		if d := math.Abs(v.Len() - 1); d > cell*math.Sqrt(3) {
			t.Fatalf("vertex %v at distance %v from surface", v, d)
		}
	}
	// Area and volume approach the analytic values.
	if a := m.SurfaceArea(); math.Abs(a-4*math.Pi)/(4*math.Pi) > 0.10 {
		t.Errorf("area = %v, want ≈ %v", a, 4*math.Pi)
	}
	if v := m.Volume(); math.Abs(v-4*math.Pi/3)/(4*math.Pi/3) > 0.10 {
		t.Errorf("volume = %v, want ≈ %v (positive ⇒ outward orientation)", v, 4*math.Pi/3)
	}
	if m.Volume() < 0 {
		t.Error("negative volume: triangles oriented inward")
	}
}

func TestIsosurfaceResolutionConvergence(t *testing.T) {
	grid := func(res int) GridSpec {
		return GridSpec{
			Bounds:     geom.NewAABB(geom.V3(-1.5, -1.5, -1.5), geom.V3(1.5, 1.5, 1.5)),
			Resolution: res,
		}
	}
	errAt := func(res int) float64 {
		m := ExtractIsosurface(sphereSDF(geom.Vec3{}, 1), grid(res))
		return math.Abs(m.Volume() - 4*math.Pi/3)
	}
	e16, e48 := errAt(16), errAt(48)
	if e48 >= e16 {
		t.Errorf("volume error did not shrink with resolution: res16=%v res48=%v", e16, e48)
	}
}

func TestIsosurfaceEmptyField(t *testing.T) {
	grid := GridSpec{
		Bounds:     geom.NewAABB(geom.V3(-1, -1, -1), geom.V3(1, 1, 1)),
		Resolution: 8,
	}
	all := func(p geom.Vec3) float64 { return 1 } // everywhere outside
	m := ExtractIsosurface(all, grid)
	if len(m.Faces) != 0 {
		t.Errorf("extracted %d faces from empty field", len(m.Faces))
	}
	none := func(p geom.Vec3) float64 { return -1 } // everywhere inside
	m = ExtractIsosurface(none, grid)
	if len(m.Faces) != 0 {
		t.Errorf("extracted %d faces from full field", len(m.Faces))
	}
}

func TestIsosurfaceDegenerateGrid(t *testing.T) {
	m := ExtractIsosurface(sphereSDF(geom.Vec3{}, 1), GridSpec{})
	if len(m.Faces) != 0 || len(m.Vertices) != 0 {
		t.Error("degenerate grid produced geometry")
	}
}

func TestIsosurfaceTwoBlobs(t *testing.T) {
	// Union of two disjoint spheres: two components, still watertight.
	f := func(p geom.Vec3) float64 {
		d1 := p.Dist(geom.V3(-1, 0, 0)) - 0.5
		d2 := p.Dist(geom.V3(1, 0, 0)) - 0.5
		return math.Min(d1, d2)
	}
	grid := GridSpec{
		Bounds:     geom.NewAABB(geom.V3(-2, -1, -1), geom.V3(2, 1, 1)),
		Resolution: 40,
	}
	m := ExtractIsosurface(f, grid)
	if !m.IsWatertight() {
		t.Error("two-blob surface not watertight")
	}
	// Volume ≈ 2 spheres of r=0.5.
	want := 2 * 4 * math.Pi / 3 * 0.125
	if v := m.Volume(); math.Abs(v-want)/want > 0.15 {
		t.Errorf("volume = %v, want ≈ %v", v, want)
	}
}

func TestSimplifyClustering(t *testing.T) {
	m := UnitSphere(3) // 1280 faces
	s := SimplifyClustering(m, 8)
	if len(s.Faces) >= len(m.Faces) {
		t.Errorf("simplify did not reduce: %d -> %d faces", len(m.Faces), len(s.Faces))
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("simplified mesh invalid: %v", err)
	}
	// Shape roughly preserved.
	for _, v := range s.Vertices {
		if v.Len() > 1.2 || v.Len() < 0.5 {
			t.Fatalf("simplified vertex %v far off sphere", v)
		}
	}
}

func TestSimplifyIdentityWhenCoarse(t *testing.T) {
	m := tetra()
	s := SimplifyClustering(m, 0)
	if len(s.Faces) != len(m.Faces) {
		t.Error("cells<1 should clone")
	}
}

func BenchmarkIsosurfaceRes32(b *testing.B) {
	grid := GridSpec{
		Bounds:     geom.NewAABB(geom.V3(-1.5, -1.5, -1.5), geom.V3(1.5, 1.5, 1.5)),
		Resolution: 32,
	}
	f := sphereSDF(geom.Vec3{}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractIsosurface(f, grid)
	}
}
