package mesh

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"semholo/internal/geom"
)

// WriteOBJ serializes the mesh in Wavefront OBJ text format (a strict
// subset: v/vn/vt/f records). This is the interchange format the examples
// use to dump reconstructions for inspection; the *wire* encoding is the
// binary codec in internal/compress/dracogo.
func WriteOBJ(w io.Writer, m *Mesh) error {
	bw := bufio.NewWriter(w)
	for _, v := range m.Vertices {
		if _, err := fmt.Fprintf(bw, "v %g %g %g\n", v.X, v.Y, v.Z); err != nil {
			return err
		}
	}
	for _, n := range m.Normals {
		if _, err := fmt.Fprintf(bw, "vn %g %g %g\n", n.X, n.Y, n.Z); err != nil {
			return err
		}
	}
	for _, uv := range m.UVs {
		if _, err := fmt.Fprintf(bw, "vt %g %g\n", uv.X, uv.Y); err != nil {
			return err
		}
	}
	for _, f := range m.Faces {
		if _, err := fmt.Fprintf(bw, "f %d %d %d\n", f.A+1, f.B+1, f.C+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadOBJ parses the subset of OBJ emitted by WriteOBJ. Face records may
// use the "v", "v/vt", or "v/vt/vn" index forms; only the vertex index is
// used.
func ReadOBJ(r io.Reader) (*Mesh, error) {
	m := &Mesh{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "v":
			v, err := parseVec3(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("obj line %d: %w", line, err)
			}
			m.Vertices = append(m.Vertices, v)
		case "vn":
			v, err := parseVec3(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("obj line %d: %w", line, err)
			}
			m.Normals = append(m.Normals, v)
		case "vt":
			if len(fields) < 3 {
				return nil, fmt.Errorf("obj line %d: vt needs 2 coordinates", line)
			}
			u, err1 := strconv.ParseFloat(fields[1], 64)
			v, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("obj line %d: bad vt", line)
			}
			m.UVs = append(m.UVs, geom.V2(u, v))
		case "f":
			if len(fields) != 4 {
				return nil, fmt.Errorf("obj line %d: only triangles supported, got %d indices", line, len(fields)-1)
			}
			var idx [3]int
			for i := 0; i < 3; i++ {
				tok := fields[i+1]
				if slash := strings.IndexByte(tok, '/'); slash >= 0 {
					tok = tok[:slash]
				}
				n, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("obj line %d: bad face index %q", line, fields[i+1])
				}
				if n < 0 {
					n = len(m.Vertices) + 1 + n // relative indexing
				}
				idx[i] = n - 1
			}
			m.Faces = append(m.Faces, Face{idx[0], idx[1], idx[2]})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseVec3(fields []string) (geom.Vec3, error) {
	if len(fields) < 3 {
		return geom.Vec3{}, fmt.Errorf("need 3 coordinates, got %d", len(fields))
	}
	x, err1 := strconv.ParseFloat(fields[0], 64)
	y, err2 := strconv.ParseFloat(fields[1], 64)
	z, err3 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return geom.Vec3{}, fmt.Errorf("bad coordinates %v", fields)
	}
	return geom.V3(x, y, z), nil
}
