package mesh

import (
	"sync"

	"semholo/internal/geom"
	"semholo/internal/par"
)

// BatchField is a TemporalField that can evaluate many lattice points in
// one call. EvalBatch fills out[i] with exactly what Eval(pts[i]) would
// return — bitwise, not approximately — so the extractors may freely
// substitute one for the other; batching exists purely so the field can
// amortize per-call setup (and, for the avatar SDF, share its spatial
// candidate pruning) across a whole chunk of points.
//
// Like Eval, EvalBatch must be safe for concurrent calls; out must have
// the same length as pts.
type BatchField interface {
	TemporalField
	EvalBatch(pts []geom.Vec3, out []Sample)
}

// planeBufPool recycles the per-plane point/sample buffers the batched
// dense extractor gathers lattice planes into.
var planeBufPool sync.Pool

type planeBuf struct {
	pts []geom.Vec3
	out []Sample
}

func getPlaneBuf(n int) *planeBuf {
	if v := planeBufPool.Get(); v != nil {
		if b := v.(*planeBuf); cap(b.pts) >= n {
			b.pts, b.out = b.pts[:n], b.out[:n]
			return b
		}
	}
	return &planeBuf{pts: make([]geom.Vec3, n), out: make([]Sample, n)}
}

func putPlaneBuf(b *planeBuf) { planeBufPool.Put(b) }

// ExtractIsosurfaceBatch is ExtractIsosurfaceParallel with lattice planes
// evaluated through the field's batch entry point instead of one Eval
// call per point. Because EvalBatch promises bitwise-identical samples,
// the output mesh is byte-identical to the scalar path at every worker
// count; only the evaluation cost changes.
func ExtractIsosurfaceBatch(field BatchField, grid GridSpec, workers int) *Mesh {
	lay, ok := grid.layout()
	if !ok {
		return &Mesh{}
	}
	ranges := par.Split(workers, lay.nz)
	slabs := make([]*slabMesh, len(ranges))
	par.For(len(ranges), len(ranges), func(c int) {
		slabs[c] = extractSlabRangeBatch(field, lay, ranges[c].Lo, ranges[c].Hi)
	})
	if len(slabs) == 1 {
		return slabs[0].mesh()
	}
	return mergeSlabs(slabs)
}

// extractSlabRangeBatch polygonizes cubes with k in [k0, k1), sampling
// each lattice plane with one EvalBatch call. The cube scan and
// polygonization are shared verbatim with the scalar slab path.
func extractSlabRangeBatch(field BatchField, lay gridLayout, k0, k1 int) *slabMesh {
	nx, ny, vx, vy := lay.nx, lay.ny, lay.vx, lay.vy
	s := newSlabMesh(lay)
	cur := getSlabBuf(vx * vy)
	next := getSlabBuf(vx * vy)
	defer putSlabBuf(cur)
	defer putSlabBuf(next)
	pb := getPlaneBuf(vx * vy)
	defer putPlaneBuf(pb)

	sampleSlab := func(k int, dst []float64) {
		for j := 0; j < vy; j++ {
			for i := 0; i < vx; i++ {
				pb.pts[j*vx+i] = s.latticePoint(i, j, k)
			}
		}
		field.EvalBatch(pb.pts, pb.out)
		for n := range dst {
			dst[n] = pb.out[n].Val
		}
	}
	sampleSlab(k0, cur)
	for k := k0; k < k1; k++ {
		sampleSlab(k+1, next)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				var vals [8]float64
				anyNeg, anyPos := false, false
				for c, off := range cubeOffsets {
					var v float64
					if off[2] == 0 {
						v = cur[(j+off[1])*vx+i+off[0]]
					} else {
						v = next[(j+off[1])*vx+i+off[0]]
					}
					vals[c] = v
					if v < 0 {
						anyNeg = true
					} else {
						anyPos = true
					}
				}
				if !anyNeg || !anyPos {
					continue
				}
				s.polygonizeCube(vals, i, j, k)
			}
		}
		cur, next = next, cur
	}
	return s
}
