package mesh

import (
	"bytes"
	"strings"
	"testing"
)

func TestOBJRoundTrip(t *testing.T) {
	m := UnitSphere(2)
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOBJ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vertices) != len(m.Vertices) || len(got.Faces) != len(m.Faces) {
		t.Fatalf("sizes changed: %d/%d verts, %d/%d faces",
			len(got.Vertices), len(m.Vertices), len(got.Faces), len(m.Faces))
	}
	if len(got.Normals) != len(m.Normals) {
		t.Fatalf("normals: %d vs %d", len(got.Normals), len(m.Normals))
	}
	for i := range m.Vertices {
		if got.Vertices[i].Dist(m.Vertices[i]) > 1e-12 {
			t.Fatalf("vertex %d moved", i)
		}
	}
	if got.Faces[7] != m.Faces[7] {
		t.Error("face indices changed")
	}
}

func TestReadOBJVariants(t *testing.T) {
	src := `
# comment
v 0 0 0
v 1 0 0
v 0 1 0
vt 0 0
vt 1 0
vt 0 1
f 1/1 2/2 3/3
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vertices) != 3 || len(m.Faces) != 1 || len(m.UVs) != 3 {
		t.Fatalf("parsed %d verts %d faces %d uvs", len(m.Vertices), len(m.Faces), len(m.UVs))
	}
}

func TestReadOBJNegativeIndices(t *testing.T) {
	src := "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n"
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Faces[0] != (Face{0, 1, 2}) {
		t.Errorf("face = %+v", m.Faces[0])
	}
}

func TestReadOBJErrors(t *testing.T) {
	cases := []string{
		"v 1 2\n",              // too few coords
		"v a b c\n",            // non-numeric
		"v 0 0 0\nf 1 2 5\n",   // out of range
		"v 0 0 0\nf 1 1 1 1\n", // quad
	}
	for _, src := range cases {
		if _, err := ReadOBJ(strings.NewReader(src)); err == nil {
			t.Errorf("accepted malformed OBJ %q", src)
		}
	}
}
