package mesh

import (
	"container/heap"
	"math"

	"semholo/internal/geom"
)

// quadric is a symmetric 4×4 error quadric stored as its 10 unique
// coefficients: [a² ab ac ad b² bc bd c² cd d²].
type quadric [10]float64

func (q *quadric) add(o *quadric) {
	for i := range q {
		q[i] += o[i]
	}
}

// planeQuadric builds the fundamental quadric of the plane through a
// face with unit normal n and point p, weighted by the face area.
func planeQuadric(n geom.Vec3, p geom.Vec3, area float64) quadric {
	d := -n.Dot(p)
	return quadric{
		area * n.X * n.X, area * n.X * n.Y, area * n.X * n.Z, area * n.X * d,
		area * n.Y * n.Y, area * n.Y * n.Z, area * n.Y * d,
		area * n.Z * n.Z, area * n.Z * d,
		area * d * d,
	}
}

// eval returns vᵀQv.
func (q *quadric) eval(v geom.Vec3) float64 {
	return q[0]*v.X*v.X + 2*q[1]*v.X*v.Y + 2*q[2]*v.X*v.Z + 2*q[3]*v.X +
		q[4]*v.Y*v.Y + 2*q[5]*v.Y*v.Z + 2*q[6]*v.Y +
		q[7]*v.Z*v.Z + 2*q[8]*v.Z +
		q[9]
}

// optimal solves ∇(vᵀQv)=0 for the minimizing position; ok=false when
// the quadric is (near-)singular.
func (q *quadric) optimal() (geom.Vec3, bool) {
	m := geom.Mat3{
		q[0], q[1], q[2],
		q[1], q[4], q[5],
		q[2], q[5], q[7],
	}
	inv, ok := m.Inverse()
	if !ok {
		return geom.Vec3{}, false
	}
	// Guard against numerically awful inverses.
	for _, v := range inv {
		if math.Abs(v) > 1e12 {
			return geom.Vec3{}, false
		}
	}
	return inv.MulVec(geom.V3(-q[3], -q[6], -q[8])), true
}

// collapse candidate for the priority queue.
type collapseCand struct {
	cost     float64
	u, v     int // collapse u into v (merged position replaces v)
	pos      geom.Vec3
	versionU int
	versionV int
	index    int // heap bookkeeping
}

type collapseHeap []*collapseCand

func (h collapseHeap) Len() int           { return len(h) }
func (h collapseHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h collapseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *collapseHeap) Push(x interface{}) {
	c := x.(*collapseCand)
	c.index = len(*h)
	*h = append(*h, c)
}
func (h *collapseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// SimplifyQuadric decimates the mesh to approximately targetFaces using
// quadric-error-metric edge collapses (Garland–Heckbert). It preserves
// overall shape far better than vertex clustering at equal budgets, and
// provides the level-of-detail rungs for the traditional pipeline's rate
// ladder and the hybrid scheme's peripheral meshes.
func SimplifyQuadric(m *Mesh, targetFaces int) *Mesh {
	if targetFaces <= 0 || len(m.Faces) <= targetFaces {
		out := m.Clone()
		out.Normals = nil
		out.UVs = nil
		return out
	}
	nv := len(m.Vertices)
	pos := append([]geom.Vec3(nil), m.Vertices...)
	alive := make([]bool, nv)
	version := make([]int, nv)
	quadrics := make([]quadric, nv)
	for i := range alive {
		alive[i] = true
	}

	// Face set with liveness; vertex→face adjacency.
	faces := append([]Face(nil), m.Faces...)
	faceAlive := make([]bool, len(faces))
	vertFaces := make([][]int, nv)
	for fi, f := range faces {
		faceAlive[fi] = true
		vertFaces[f.A] = append(vertFaces[f.A], fi)
		vertFaces[f.B] = append(vertFaces[f.B], fi)
		vertFaces[f.C] = append(vertFaces[f.C], fi)
	}
	liveFaces := len(faces)

	// Initial quadrics.
	for fi, f := range faces {
		a, b, c := pos[f.A], pos[f.B], pos[f.C]
		cr := b.Sub(a).Cross(c.Sub(a))
		area := cr.Len() / 2
		if area < 1e-18 {
			continue
		}
		n := cr.Normalize()
		pq := planeQuadric(n, a, area)
		quadrics[f.A].add(&pq)
		quadrics[f.B].add(&pq)
		quadrics[f.C].add(&pq)
		_ = fi
	}

	h := &collapseHeap{}
	heap.Init(h)
	pushEdge := func(u, v int) {
		if u == v || !alive[u] || !alive[v] {
			return
		}
		var q quadric
		q = quadrics[u]
		q.add(&quadrics[v])
		best, ok := q.optimal()
		if !ok || !best.IsFinite() {
			best = pos[u].Lerp(pos[v], 0.5)
		}
		heap.Push(h, &collapseCand{
			cost:     q.eval(best),
			u:        u,
			v:        v,
			pos:      best,
			versionU: version[u],
			versionV: version[v],
		})
	}
	seedEdges := func(fi int) {
		f := faces[fi]
		pushEdge(minI(f.A, f.B), maxI(f.A, f.B))
		pushEdge(minI(f.B, f.C), maxI(f.B, f.C))
		pushEdge(minI(f.C, f.A), maxI(f.C, f.A))
	}
	for fi := range faces {
		seedEdges(fi)
	}

	for liveFaces > targetFaces && h.Len() > 0 {
		cand := heap.Pop(h).(*collapseCand)
		u, v := cand.u, cand.v
		// Stale entry: a participant moved or died since scheduling.
		if !alive[u] || !alive[v] ||
			cand.versionU != version[u] || cand.versionV != version[v] {
			continue
		}
		// Collapse u into v at the optimal position.
		alive[u] = false
		pos[v] = cand.pos
		version[v]++
		quadrics[v].add(&quadrics[u])

		// Remap u's faces; kill degenerates.
		for _, fi := range vertFaces[u] {
			if !faceAlive[fi] {
				continue
			}
			f := &faces[fi]
			if f.A == u {
				f.A = v
			}
			if f.B == u {
				f.B = v
			}
			if f.C == u {
				f.C = v
			}
			if f.A == f.B || f.B == f.C || f.A == f.C {
				faceAlive[fi] = false
				liveFaces--
			} else {
				vertFaces[v] = append(vertFaces[v], fi)
			}
		}
		vertFaces[u] = nil

		// Reschedule v's incident edges.
		seen := map[int]bool{}
		for _, fi := range vertFaces[v] {
			if !faceAlive[fi] {
				continue
			}
			f := faces[fi]
			for _, w := range [3]int{f.A, f.B, f.C} {
				if w != v && !seen[w] {
					seen[w] = true
					pushEdge(minI(v, w), maxI(v, w))
				}
			}
		}
	}

	// Compact the result.
	out := &Mesh{}
	remap := make([]int, nv)
	for i := range remap {
		remap[i] = -1
	}
	for fi, live := range faceAlive {
		if !live {
			continue
		}
		f := faces[fi]
		var nf Face
		ids := [3]*int{&nf.A, &nf.B, &nf.C}
		for k, vi := range [3]int{f.A, f.B, f.C} {
			if remap[vi] < 0 {
				remap[vi] = len(out.Vertices)
				out.Vertices = append(out.Vertices, pos[vi])
			}
			*ids[k] = remap[vi]
		}
		out.Faces = append(out.Faces, nf)
	}
	return out
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
