package mesh

// Engine-level tests for the temporal-coherence extractor: warm-started
// extraction over a moving synthetic field must stay byte-identical to
// cold extraction at every worker count, and the exact sample-reuse hook
// must engage for regions the motion cannot affect.

import (
	"reflect"
	"testing"

	"semholo/internal/geom"
)

type sphere struct {
	c geom.Vec3
	r float64
}

func (s sphere) dist(p geom.Vec3) float64 { return p.Dist(s.c) - s.r }

// twoSpheres is a minimal TemporalField: a static sphere plus a moving
// one, combined with an exact min. aux caches the field value itself;
// a previous sample is reusable iff the moving sphere — at its old AND
// new position — is strictly farther than the cached minimum, in which
// case the static sphere determined the value in both frames.
type twoSpheres struct {
	static       sphere
	moving, prev sphere
	warm         bool
}

func (f *twoSpheres) Eval(p geom.Vec3) (float64, float64) {
	v := f.static.dist(p)
	if d := f.moving.dist(p); d < v {
		v = d
	}
	return v, v
}

func (f *twoSpheres) Reusable(p geom.Vec3, val, aux float64) bool {
	if !f.warm {
		return false
	}
	return f.prev.dist(p) > aux && f.moving.dist(p) > aux
}

func temporalGrid() GridSpec {
	return GridSpec{
		Bounds: geom.NewAABB(geom.V3(-1, -0.8, -0.8), geom.V3(1, 0.8, 0.8)),
		Cell:   1.0 / 24,
	}
}

func temporalFrame(i int) *twoSpheres {
	move := func(i int) sphere {
		return sphere{c: geom.V3(0.35+0.01*float64(i), 0.02*float64(i), 0), r: 0.22}
	}
	f := &twoSpheres{
		static: sphere{c: geom.V3(-0.35, 0, 0), r: 0.3},
		moving: move(i),
	}
	if i > 0 {
		f.prev = move(i - 1)
		f.warm = true
	}
	return f
}

func temporalSeeds(f *twoSpheres) []geom.Vec3 {
	return []geom.Vec3{f.static.c, f.moving.c}
}

// TestTemporalWarmMatchesCold replays a moving two-sphere scene through
// one SparseState and demands byte-identical output to independent cold
// runs, across worker counts.
func TestTemporalWarmMatchesCold(t *testing.T) {
	grid := temporalGrid()
	for _, workers := range []int{1, 3} {
		st := &SparseState{}
		for i := 0; i < 10; i++ {
			f := temporalFrame(i)
			warm := ExtractIsosurfaceSparseTemporal(f, grid, temporalSeeds(f), workers, st)
			coldF := temporalFrame(i)
			coldF.warm = false
			cold := ExtractIsosurfaceSparseTemporal(coldF, grid, temporalSeeds(coldF), 1, nil)
			if len(warm.Faces) == 0 {
				t.Fatalf("frame %d produced no faces", i)
			}
			if !reflect.DeepEqual(warm, cold) {
				t.Fatalf("workers=%d frame %d: warm mesh != cold mesh", workers, i)
			}
			if i > 0 && !st.Warm {
				t.Fatalf("frame %d did not warm-start", i)
			}
		}
	}
}

// TestTemporalReuseEngages verifies samples near the static sphere are
// actually served from the cross-frame cache.
func TestTemporalReuseEngages(t *testing.T) {
	grid := temporalGrid()
	st := &SparseState{}
	for i := 0; i < 3; i++ {
		f := temporalFrame(i)
		ExtractIsosurfaceSparseTemporal(f, grid, temporalSeeds(f), 2, st)
	}
	if st.Reused == 0 {
		t.Fatalf("no samples reused (evaluated %d)", st.Evaluated)
	}
}

// TestTemporalResetForcesCold: after Reset the next run must not report
// a warm start yet still produce the cold mesh.
func TestTemporalResetForcesCold(t *testing.T) {
	grid := temporalGrid()
	st := &SparseState{}
	f0 := temporalFrame(0)
	ExtractIsosurfaceSparseTemporal(f0, grid, temporalSeeds(f0), 1, st)
	st.Reset()
	f1 := temporalFrame(1)
	warm := ExtractIsosurfaceSparseTemporal(f1, grid, temporalSeeds(f1), 1, st)
	if st.Warm || st.Reused != 0 {
		t.Fatalf("Reset did not force a cold run (warm=%v reused=%d)", st.Warm, st.Reused)
	}
	coldF := temporalFrame(1)
	coldF.warm = false
	cold := ExtractIsosurfaceSparseTemporal(coldF, grid, temporalSeeds(coldF), 1, nil)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("post-Reset mesh differs from cold")
	}
}

// TestAnchoredGridBitwiseStableAcrossBounds pins the anchoring property
// everything else rests on: the same world lattice point, reached
// through two grids with different bounds, has bitwise-identical
// coordinates.
func TestAnchoredGridBitwiseStableAcrossBounds(t *testing.T) {
	cell := 1.0 / 24
	a, ok := GridSpec{Bounds: geom.NewAABB(geom.V3(-1, -1, -1), geom.V3(1, 1, 1)), Cell: cell}.layout()
	if !ok {
		t.Fatal("layout a failed")
	}
	b, ok := GridSpec{Bounds: geom.NewAABB(geom.V3(-0.63, -0.91, -0.77), geom.V3(1.13, 0.89, 0.99)), Cell: cell}.layout()
	if !ok {
		t.Fatal("layout b failed")
	}
	sa, sb := newSlabMesh(a), newSlabMesh(b)
	// Walk a shared region and compare points at equal global coords.
	for gk := 0; gk < 4; gk++ {
		for gj := 0; gj < 4; gj++ {
			for gi := 0; gi < 4; gi++ {
				pa := sa.latticePoint(gi-a.base[0], gj-a.base[1], gk-a.base[2])
				pb := sb.latticePoint(gi-b.base[0], gj-b.base[1], gk-b.base[2])
				if pa != pb {
					t.Fatalf("global (%d,%d,%d): %v != %v", gi, gj, gk, pa, pb)
				}
			}
		}
	}
}
