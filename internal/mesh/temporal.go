package mesh

// Temporal-coherence support for the narrow-band extractor: a field
// interface that can vouch for the cross-frame validity of individual
// lattice samples, and a state object carrying the previous frame's
// surface band, sample cache, and scratch arenas.

import "semholo/internal/geom"

// TemporalField is a scalar field that supports exact cross-frame sample
// reuse. Eval returns the field value plus an auxiliary datum that is
// cached alongside it (the avatar SDF stores its exact minimum capsule
// distance there). Reusable reports whether a sample recorded by the
// previous frame's field at the same lattice point is still valid.
//
// The contract is strict: Reusable(p, val, aux) == true promises that
// Eval(p) would return exactly (val, aux) — bitwise, not approximately.
// The extractor's byte-identical-to-cold guarantee rests on this.
//
// Implementations must be safe for concurrent calls (the extractor
// batches evaluations across workers), which pure functions of the input
// point satisfy trivially.
type TemporalField interface {
	Eval(p geom.Vec3) (val, aux float64)
	Reusable(p geom.Vec3, val, aux float64) bool
}

// scalarTemporal adapts a plain ScalarField: no auxiliary datum, no
// cross-frame reuse.
type scalarTemporal struct{ f ScalarField }

func (s scalarTemporal) Eval(p geom.Vec3) (float64, float64)       { return s.f(p), 0 }
func (s scalarTemporal) Reusable(geom.Vec3, float64, float64) bool { return false }

// Sample is one field evaluation: the value plus the auxiliary datum a
// TemporalField carries alongside it (the avatar SDF stores its exact
// minimum capsule distance there). It is the unit the lattice cache
// stores and the element type of BatchField.EvalBatch output.
type Sample struct{ Val, Aux float64 }

// cell3 addresses a lattice cube in grid-local coordinates.
type cell3 struct{ i, j, k int }

// packG packs global integer lattice coordinates into one map key.
// 21 bits per axis around a 2²⁰ bias covers ±1M cells — far beyond any
// grid this package is asked to build.
const packBias = 1 << 20

func packG(i, j, k int) int64 {
	return int64(i+packBias)<<42 | int64(j+packBias)<<21 | int64(k+packBias)
}

func unpackG(key int64) (i, j, k int) {
	const mask = 1<<21 - 1
	return int(key>>42&mask) - packBias,
		int(key>>21&mask) - packBias,
		int(key&mask) - packBias
}

// SparseState carries temporal-coherence state for
// ExtractIsosurfaceSparseTemporal across frames: the previous frame's
// surface band (packed global cell coordinates), its lattice samples, and
// every scratch buffer the extractor needs, so steady-state warm frames
// stop allocating. The zero value is ready to use; the first extraction
// through it runs cold. A SparseState must not be shared between
// concurrent extractions.
type SparseState struct {
	// Stats for the most recent extraction through this state.
	Reused    int  // lattice samples satisfied by the previous frame's cache
	Evaluated int  // lattice samples freshly evaluated
	Warm      bool // whether the wavefront was seeded from a previous band

	cell float64 // lattice spacing the cached band/samples are valid for
	band []int64 // previous band cells, packed global coords, sorted
	// Previous frame's lattice samples: a flat sample arena plus a slot
	// index over it — a dense int32 per lattice vertex on moderate grids
	// (prevDense, addressed through prevBase/prevV* bounds), a map keyed
	// by packed global coords on huge ones. Splitting the index from the
	// payload keeps within-frame reads on array indexing — profiling
	// shows map traffic, not field math, dominates extraction once the
	// field itself is pruned.
	prev          map[int64]int32
	prevSamples   []Sample
	prevSlotDense []int32
	prevDense     bool
	prevBase      [3]int
	prevVX        int
	prevVY        int
	prevVZ        int

	// Scratch arenas; contents are meaningless between runs.
	cur          map[int64]int32
	curSamples   []Sample
	slotDense    []int32        // dense per-vertex arena slot + 1 (0 = unsampled)
	visited      map[int64]bool // wavefront dedup (large grids only; see visitedDense)
	visitedDense []uint8        // dense per-cell dedup for moderate grids
	front        []cell3
	next         []cell3
	needPts      []geom.Vec3
	needIdx      []int32 // arena slot for each freshly discovered vertex
	needPrev     []int32 // previous-frame arena slot for it, or -1
	needOut      []Sample
	needHit      []bool
	batchPts     []geom.Vec3 // per-round compaction of not-reusable points (BatchField path)
	batchOut     []Sample
	batchIdx     []int32
	cornerIdx    []int32 // per-round: 8 arena slots per frontier cube
	bandCells    []cell3
	bandCorners  []int32 // 8 arena slots per band cell, permuted with it
	roots        []int64
	mark         []uint8 // dense per-cell marks for the reachability filter
	queue        []cell3
	shared       map[latticeEdge]int
	edgeKeys     []latticeEdge
	rays         []seedRay
	lastVerts    int
	lastFaces    int
}

// Reset drops the cached band and samples so the next extraction runs
// cold (scratch arenas are kept). Call it when the field changes in a way
// the TemporalField cannot account for — e.g. a resolution switch.
func (st *SparseState) Reset() {
	st.band = st.band[:0]
	if st.prev != nil {
		clear(st.prev)
	}
	st.prevSamples = st.prevSamples[:0]
	st.cell = 0
}

// seedRay is the per-ray scratch for lattice-aligned seed marching.
type seedRay struct {
	keys  []int64
	pts   []geom.Vec3
	out   []Sample
	hit   []bool
	cross []cell3
}
