package mesh

// Temporal-coherence support for the narrow-band extractor: a field
// interface that can vouch for the cross-frame validity of individual
// lattice samples, and a state object carrying the previous frame's
// surface band, sample cache, and scratch arenas.

import "semholo/internal/geom"

// TemporalField is a scalar field that supports exact cross-frame sample
// reuse. Eval returns the field value plus an auxiliary datum that is
// cached alongside it (the avatar SDF stores its exact minimum capsule
// distance there). Reusable reports whether a sample recorded by the
// previous frame's field at the same lattice point is still valid.
//
// The contract is strict: Reusable(p, val, aux) == true promises that
// Eval(p) would return exactly (val, aux) — bitwise, not approximately.
// The extractor's byte-identical-to-cold guarantee rests on this.
//
// Implementations must be safe for concurrent calls (the extractor
// batches evaluations across workers), which pure functions of the input
// point satisfy trivially.
type TemporalField interface {
	Eval(p geom.Vec3) (val, aux float64)
	Reusable(p geom.Vec3, val, aux float64) bool
}

// scalarTemporal adapts a plain ScalarField: no auxiliary datum, no
// cross-frame reuse.
type scalarTemporal struct{ f ScalarField }

func (s scalarTemporal) Eval(p geom.Vec3) (float64, float64)       { return s.f(p), 0 }
func (s scalarTemporal) Reusable(geom.Vec3, float64, float64) bool { return false }

// sample is one cached lattice evaluation.
type sample struct{ val, aux float64 }

// cell3 addresses a lattice cube in grid-local coordinates.
type cell3 struct{ i, j, k int }

// packG packs global integer lattice coordinates into one map key.
// 21 bits per axis around a 2²⁰ bias covers ±1M cells — far beyond any
// grid this package is asked to build.
const packBias = 1 << 20

func packG(i, j, k int) int64 {
	return int64(i+packBias)<<42 | int64(j+packBias)<<21 | int64(k+packBias)
}

func unpackG(key int64) (i, j, k int) {
	const mask = 1<<21 - 1
	return int(key>>42&mask) - packBias,
		int(key>>21&mask) - packBias,
		int(key&mask) - packBias
}

// SparseState carries temporal-coherence state for
// ExtractIsosurfaceSparseTemporal across frames: the previous frame's
// surface band (packed global cell coordinates), its lattice samples, and
// every scratch buffer the extractor needs, so steady-state warm frames
// stop allocating. The zero value is ready to use; the first extraction
// through it runs cold. A SparseState must not be shared between
// concurrent extractions.
type SparseState struct {
	// Stats for the most recent extraction through this state.
	Reused    int  // lattice samples satisfied by the previous frame's cache
	Evaluated int  // lattice samples freshly evaluated
	Warm      bool // whether the wavefront was seeded from a previous band

	cell float64          // lattice spacing the cached band/samples are valid for
	band []int64          // previous band cells, packed global coords, sorted
	prev map[int64]sample // previous frame's lattice samples, packed global vertex coords

	// Scratch arenas; contents are meaningless between runs.
	cur       map[int64]sample
	visited   map[int64]bool
	front     []cell3
	next      []cell3
	needKeys  []int64
	needPts   []geom.Vec3
	needOut   []sample
	needHit   []bool
	bandCells []cell3
	roots     []int64
	mark      []uint8 // dense per-cell marks for the reachability filter
	queue     []cell3
	shared    map[latticeEdge]int
	edgeKeys  []latticeEdge
	rays      []seedRay
	lastVerts int
	lastFaces int
}

// Reset drops the cached band and samples so the next extraction runs
// cold (scratch arenas are kept). Call it when the field changes in a way
// the TemporalField cannot account for — e.g. a resolution switch.
func (st *SparseState) Reset() {
	st.band = st.band[:0]
	if st.prev != nil {
		clear(st.prev)
	}
	st.cell = 0
}

// seedRay is the per-ray scratch for lattice-aligned seed marching.
type seedRay struct {
	keys  []int64
	pts   []geom.Vec3
	out   []sample
	hit   []bool
	cross []cell3
}
