package mesh

import (
	"semholo/internal/geom"
)

// SimplifyClustering reduces the mesh by clustering vertices on a uniform
// grid with the given number of cells along the longest bounding-box axis
// and merging each cluster to its centroid. Faces collapsing to fewer than
// three distinct clusters are dropped. This is the decimation used to
// produce the reduced-quality peripheral meshes in the foveated hybrid
// scheme (§3.1) and the level-of-detail rungs for rate adaptation.
func SimplifyClustering(m *Mesh, cells int) *Mesh {
	if cells < 1 || len(m.Vertices) == 0 {
		return m.Clone()
	}
	b := m.Bounds()
	longest := b.Size().MaxComponent()
	if longest <= 0 {
		return m.Clone()
	}
	cell := longest / float64(cells)

	type cellKey struct{ x, y, z int32 }
	keyOf := func(v geom.Vec3) cellKey {
		d := v.Sub(b.Min)
		return cellKey{int32(d.X / cell), int32(d.Y / cell), int32(d.Z / cell)}
	}

	clusterIdx := make(map[cellKey]int)
	var sums []geom.Vec3
	var counts []int
	remap := make([]int, len(m.Vertices))
	for i, v := range m.Vertices {
		k := keyOf(v)
		idx, ok := clusterIdx[k]
		if !ok {
			idx = len(sums)
			clusterIdx[k] = idx
			sums = append(sums, geom.Vec3{})
			counts = append(counts, 0)
		}
		sums[idx] = sums[idx].Add(v)
		counts[idx]++
		remap[i] = idx
	}

	out := &Mesh{Vertices: make([]geom.Vec3, len(sums))}
	for i := range sums {
		out.Vertices[i] = sums[i].Scale(1 / float64(counts[i]))
	}
	seen := make(map[Face]struct{}, len(m.Faces))
	for _, f := range m.Faces {
		nf := Face{remap[f.A], remap[f.B], remap[f.C]}
		if nf.A == nf.B || nf.B == nf.C || nf.A == nf.C {
			continue
		}
		// Deduplicate faces that collapse onto each other (canonical
		// rotation keeps orientation).
		canon := nf
		if canon.B < canon.A && canon.B < canon.C {
			canon = Face{nf.B, nf.C, nf.A}
		} else if canon.C < canon.A && canon.C < canon.B {
			canon = Face{nf.C, nf.A, nf.B}
		}
		if _, dup := seen[canon]; dup {
			continue
		}
		seen[canon] = struct{}{}
		out.Faces = append(out.Faces, nf)
	}
	return out
}

// CompactVertices removes vertices not referenced by any face, remapping
// face indices. Attribute arrays are compacted in parallel.
func (m *Mesh) CompactVertices() {
	used := make([]bool, len(m.Vertices))
	for _, f := range m.Faces {
		used[f.A], used[f.B], used[f.C] = true, true, true
	}
	remap := make([]int, len(m.Vertices))
	next := 0
	for i, u := range used {
		if u {
			remap[i] = next
			m.Vertices[next] = m.Vertices[i]
			if m.Normals != nil {
				m.Normals[next] = m.Normals[i]
			}
			if m.UVs != nil {
				m.UVs[next] = m.UVs[i]
			}
			next++
		}
	}
	m.Vertices = m.Vertices[:next]
	if m.Normals != nil {
		m.Normals = m.Normals[:next]
	}
	if m.UVs != nil {
		m.UVs = m.UVs[:next]
	}
	for i, f := range m.Faces {
		m.Faces[i] = Face{remap[f.A], remap[f.B], remap[f.C]}
	}
}
