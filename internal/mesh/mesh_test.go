package mesh

import (
	"math"
	"testing"

	"semholo/internal/geom"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// tetra returns a regular-ish closed tetrahedron.
func tetra() *Mesh {
	return &Mesh{
		Vertices: []geom.Vec3{
			{X: 1, Y: 1, Z: 1},
			{X: 1, Y: -1, Z: -1},
			{X: -1, Y: 1, Z: -1},
			{X: -1, Y: -1, Z: 1},
		},
		Faces: []Face{
			{0, 1, 2}, {0, 2, 3}, {0, 3, 1}, {1, 3, 2},
		},
	}
}

func TestValidate(t *testing.T) {
	m := tetra()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid mesh rejected: %v", err)
	}
	bad := &Mesh{Vertices: m.Vertices, Faces: []Face{{0, 1, 9}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range face accepted")
	}
	deg := &Mesh{Vertices: m.Vertices, Faces: []Face{{0, 0, 1}}}
	if err := deg.Validate(); err == nil {
		t.Error("degenerate face accepted")
	}
	badN := &Mesh{Vertices: m.Vertices, Faces: m.Faces, Normals: make([]geom.Vec3, 2)}
	if err := badN.Validate(); err == nil {
		t.Error("mismatched normals accepted")
	}
}

func TestTetraTopology(t *testing.T) {
	m := tetra()
	if !m.IsWatertight() {
		t.Error("closed tetrahedron not watertight")
	}
	if got := m.EdgeCount(); got != 6 {
		t.Errorf("EdgeCount = %d, want 6", got)
	}
	if got := m.BoundaryEdges(); got != 0 {
		t.Errorf("BoundaryEdges = %d, want 0", got)
	}
	if got := m.EulerCharacteristic(); got != 2 {
		t.Errorf("Euler characteristic = %d, want 2", got)
	}
}

func TestTetraVolumeOrientation(t *testing.T) {
	m := tetra()
	// Regular tetrahedron with edge length 2√2 has volume (2√2)³/(6√2) = 8/3.
	want := 8.0 / 3.0
	if v := m.Volume(); !almostEq(v, want, 1e-9) {
		t.Errorf("Volume = %v, want %v (orientation or formula wrong)", v, want)
	}
}

func TestUnitSphereGeometry(t *testing.T) {
	m := UnitSphere(3)
	if !m.IsWatertight() {
		t.Fatal("sphere not watertight")
	}
	if got := m.EulerCharacteristic(); got != 2 {
		t.Errorf("Euler characteristic = %d, want 2", got)
	}
	// Inscribed polyhedron: area and volume slightly below the analytic
	// sphere values, converging from below.
	if a := m.SurfaceArea(); !almostEq(a, 4*math.Pi, 0.1) {
		t.Errorf("SurfaceArea = %v, want ≈ %v", a, 4*math.Pi)
	}
	if v := m.Volume(); !almostEq(v, 4*math.Pi/3, 0.05) {
		t.Errorf("Volume = %v, want ≈ %v", v, 4*math.Pi/3)
	}
	// All vertices on the unit sphere.
	for _, p := range m.Vertices {
		if !almostEq(p.Len(), 1, 1e-12) {
			t.Fatalf("vertex %v off the unit sphere", p)
		}
	}
	// Normals point outward (aligned with position on a sphere).
	for i, n := range m.Normals {
		if n.Dot(m.Vertices[i]) < 0.9 {
			t.Fatalf("vertex %d normal %v not outward", i, n)
		}
	}
}

func TestSubdivideQuadruplesFaces(t *testing.T) {
	m := tetra()
	s := m.SubdivideMidpoint()
	if got := len(s.Faces); got != 4*len(m.Faces) {
		t.Errorf("faces = %d, want %d", got, 4*len(m.Faces))
	}
	if !s.IsWatertight() {
		t.Error("subdivided mesh not watertight")
	}
	// Midpoint subdivision of a flat-faced solid keeps volume identical.
	if !almostEq(s.Volume(), m.Volume(), 1e-9) {
		t.Errorf("volume changed: %v -> %v", m.Volume(), s.Volume())
	}
}

func TestComputeNormalsSphere(t *testing.T) {
	m := UnitSphere(2)
	m.Normals = nil
	m.ComputeNormals()
	for i, n := range m.Normals {
		if !almostEq(n.Len(), 1, 1e-9) {
			t.Fatalf("normal %d not unit: %v", i, n)
		}
	}
}

func TestTransform(t *testing.T) {
	m := UnitSphere(1)
	vol := m.Volume()
	m.Transform(geom.Translation(geom.V3(5, -3, 2)))
	if !almostEq(m.Volume(), vol, 1e-9) {
		t.Error("translation changed volume")
	}
	c := m.Bounds().Center()
	if c.Dist(geom.V3(5, -3, 2)) > 1e-9 {
		t.Errorf("center after translate = %v", c)
	}
}

func TestMergeOffsetsFaces(t *testing.T) {
	a, b := tetra(), tetra()
	b.Transform(geom.Translation(geom.V3(10, 0, 0)))
	nv, nf := len(a.Vertices), len(a.Faces)
	a.Merge(b)
	if len(a.Vertices) != 2*nv || len(a.Faces) != 2*nf {
		t.Fatalf("merge sizes: %d verts %d faces", len(a.Vertices), len(a.Faces))
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("merged mesh invalid: %v", err)
	}
	if a.Faces[nf].A != nv {
		t.Error("face indices not offset")
	}
}

func TestSamplePointsOnSurface(t *testing.T) {
	m := UnitSphere(2)
	pts := m.SamplePoints(500)
	if len(pts) < 400 {
		t.Fatalf("sampled only %d points", len(pts))
	}
	for _, p := range pts {
		// Samples lie on chords of the sphere, so slightly inside.
		if p.Len() > 1.0001 || p.Len() < 0.9 {
			t.Fatalf("sample %v far from surface", p)
		}
	}
}

func TestCompactVertices(t *testing.T) {
	m := tetra()
	// Add an orphan vertex.
	m.Vertices = append(m.Vertices, geom.V3(99, 99, 99))
	m.ComputeNormals()
	m.CompactVertices()
	if len(m.Vertices) != 4 {
		t.Errorf("vertices after compact = %d, want 4", len(m.Vertices))
	}
	if len(m.Normals) != 4 {
		t.Errorf("normals after compact = %d, want 4", len(m.Normals))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("compact broke mesh: %v", err)
	}
}
