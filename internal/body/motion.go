package body

import (
	"math"

	"semholo/internal/geom"
)

// Motion generates a pose-parameter stream: the deterministic workload
// generator standing in for the paper's captured RGB-D sequences (the
// X-Avatar dataset, §4.1). Each generator produces smooth, plausible
// human motion so inter-frame similarity — which the delta-encoding and
// fine-tuning agenda items (§3.2, §3.3) exploit — is realistic.
type Motion interface {
	// At returns the body parameters at time t (seconds).
	At(t float64) *Params
}

// MotionFunc adapts a function to the Motion interface.
type MotionFunc func(t float64) *Params

// At implements Motion.
func (f MotionFunc) At(t float64) *Params { return f(t) }

// baseParams returns a neutral standing pose with slight arm lowering so
// the T-pose doesn't look robotic.
func baseParams(shape []float64) *Params {
	p := &Params{}
	for i := 0; i < NumShape && i < len(shape); i++ {
		p.Shape[i] = shape[i]
	}
	// Arms relaxed: rotate shoulders down around z (left arm +x → rotate
	// -z brings it down; right arm mirrored).
	p.Pose[LeftShoulder] = geom.V3(0, 0, -1.1)
	p.Pose[RightShoulder] = geom.V3(0, 0, 1.1)
	return p
}

// Talking simulates a seated/standing speaker: subtle torso sway, head
// motion, continuous jaw and expression activity, sporadic hand gestures.
// This is the "online meeting" workload (§1: a speaker's prominent
// gestures and facial expressions).
func Talking(shape []float64) Motion {
	return MotionFunc(func(t float64) *Params {
		p := baseParams(shape)
		sway := 0.03 * math.Sin(2*math.Pi*0.2*t)
		p.Pose[Spine2] = geom.V3(0.02*math.Sin(2*math.Pi*0.13*t), sway, 0)
		p.Pose[Neck] = geom.V3(
			0.06*math.Sin(2*math.Pi*0.31*t),
			0.10*math.Sin(2*math.Pi*0.17*t+1),
			0.03*math.Sin(2*math.Pi*0.23*t+2),
		)
		// Gesturing right forearm, period ~4s.
		gest := 0.5 + 0.5*math.Sin(2*math.Pi*0.25*t)
		p.Pose[RightShoulder] = geom.V3(0, 0.3*gest, 0.9-0.5*gest)
		p.Pose[RightElbow] = geom.V3(0, -0.4-0.8*gest, 0.3)
		// Finger articulation while gesturing.
		curl := 0.3 + 0.25*math.Sin(2*math.Pi*0.5*t)
		for j := RightThumb1; j <= RightPinky3; j++ {
			p.Pose[j] = geom.V3(0, 0, curl)
		}
		// Speech: jaw at syllable rate ~4 Hz, modulated at phrase rate.
		phrase := 0.5 + 0.5*math.Sin(2*math.Pi*0.1*t)
		p.Expression[0] = phrase * (0.3 + 0.3*math.Abs(math.Sin(2*math.Pi*2.1*t)))
		p.Expression[1] = 0.4 * math.Sin(2*math.Pi*0.07*t) // drifting smile/pout
		p.Expression[2] = 0.3 * math.Max(0, math.Sin(2*math.Pi*0.11*t+0.7))
		return p
	})
}

// Walking simulates walking in place: alternating leg swing, arm
// counter-swing, vertical bob.
func Walking(shape []float64) Motion {
	const stride = 1.0 // Hz
	return MotionFunc(func(t float64) *Params {
		p := baseParams(shape)
		ph := 2 * math.Pi * stride * t
		swing := 0.5 * math.Sin(ph)
		p.Pose[LeftHip] = geom.V3(swing, 0, 0)
		p.Pose[RightHip] = geom.V3(-swing, 0, 0)
		p.Pose[LeftKnee] = geom.V3(math.Max(0, -0.9*math.Sin(ph-0.6)), 0, 0)
		p.Pose[RightKnee] = geom.V3(math.Max(0, 0.9*math.Sin(ph-0.6)), 0, 0)
		// Arms counter-swing about the shoulder x axis.
		p.Pose[LeftShoulder] = p.Pose[LeftShoulder].Add(geom.V3(-0.35*swing, 0, 0))
		p.Pose[RightShoulder] = p.Pose[RightShoulder].Add(geom.V3(0.35*swing, 0, 0))
		p.Pose[LeftElbow] = geom.V3(-0.25, 0, 0)
		p.Pose[RightElbow] = geom.V3(-0.25, 0, 0)
		p.Translation = geom.V3(0, 0.025*math.Abs(math.Sin(ph)), 0)
		p.Pose[Spine1] = geom.V3(0.03, 0.05*math.Sin(ph), 0)
		return p
	})
}

// Waving simulates a greeting wave with the left arm plus head nods —
// a high-amplitude, high-frequency upper-body workload.
func Waving(shape []float64) Motion {
	return MotionFunc(func(t float64) *Params {
		p := baseParams(shape)
		// Raise the left arm and oscillate the forearm.
		p.Pose[LeftShoulder] = geom.V3(0, 0, 1.2)
		p.Pose[LeftElbow] = geom.V3(0, 0, 0.6+0.5*math.Sin(2*math.Pi*1.5*t))
		p.Pose[LeftWrist] = geom.V3(0, 0.3*math.Sin(2*math.Pi*1.5*t+0.5), 0)
		p.Pose[Neck] = geom.V3(0.12*math.Sin(2*math.Pi*0.5*t), 0, 0)
		p.Expression[1] = 0.6 // smiling
		return p
	})
}

// Still returns a frozen pose — the degenerate workload for measuring
// codec floors (inter-frame deltas should approach zero bytes).
func Still(shape []float64) Motion {
	return MotionFunc(func(t float64) *Params {
		return baseParams(shape)
	})
}

// Sample evaluates a motion at the given frame rate and returns count
// consecutive frames starting at t0.
func Sample(m Motion, t0 float64, fps float64, count int) []*Params {
	out := make([]*Params, count)
	for i := 0; i < count; i++ {
		out[i] = m.At(t0 + float64(i)/fps)
	}
	return out
}
