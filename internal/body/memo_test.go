package body

import (
	"sync"
	"testing"
)

// TestJointGlobalsMemoized pins the FK memo: repeated identical params
// return the same transforms, changed params invalidate, and the
// memoized result matches a direct FK computation exactly.
func TestJointGlobalsMemoized(t *testing.T) {
	m := NewModel(nil, ModelOptions{Detail: 1})
	p := Talking(nil).At(0.3)

	a := m.JointGlobals(p)
	b := m.JointGlobals(p)
	if a != b {
		t.Fatal("identical params returned different transforms")
	}

	q := *p
	q.Pose[Neck].X += 0.01
	c := m.JointGlobals(&q)
	if c == a {
		t.Fatal("changed params returned the memoized transforms")
	}
	pose := effectivePose(&q)
	if want := m.Skeleton.globalTransforms(&pose, q.Translation); c != want {
		t.Fatal("memo path diverges from direct forward kinematics")
	}

	// The memo also backs Mesh and Keypoints; a pose swap between them
	// must not leak stale transforms.
	k1 := m.Keypoints(p)
	k2 := m.Keypoints(&q)
	if k1[int(Head)] == k2[int(Head)] {
		t.Fatal("keypoints ignored the pose change")
	}
}

// TestJointGlobalsConcurrent exercises the lock-free memo under
// concurrent mixed-pose callers (meaningful under -race).
func TestJointGlobalsConcurrent(t *testing.T) {
	m := NewModel(nil, ModelOptions{Detail: 1})
	motion := Talking(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := motion.At(float64((i + w) % 7))
				g := m.JointGlobals(p)
				pose := effectivePose(p)
				if g != m.Skeleton.globalTransforms(&pose, p.Translation) {
					t.Error("concurrent memo returned transforms for a different pose")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
