// Package body implements a from-scratch parametric articulated human
// body model — the stand-in for SMPL-X [74], which the paper's
// proof-of-concept aligns keypoints to (§4.1). The model exposes the same
// interface contract as SMPL-X: a compact pose+shape+expression parameter
// vector (~1.9 KB per frame on the wire — the "semantic" payload of
// Table 2) that deterministically expands into a full-body triangle mesh
// of ~10k vertices (the "traditional" payload of Table 2).
//
// The template is generated procedurally (capsules per bone, blended by
// distance-weighted linear blend skinning), so the repository needs no
// external scan data. The fixed-parameter limitation the paper discusses
// in §3.1 — extra keypoints cannot improve quality beyond what the
// parameter space spans — holds for this model exactly as for SMPL-X.
package body

import "semholo/internal/geom"

// Joint identifies a skeleton joint.
type Joint int

// The skeleton mirrors SMPL-X's layout: body, jaw and eyes, and 15
// finger joints per hand. 57 joints total.
const (
	Pelvis Joint = iota
	Spine1
	Spine2
	Spine3
	Neck
	Head
	Jaw
	LeftEye
	RightEye

	LeftClavicle
	LeftShoulder
	LeftElbow
	LeftWrist
	RightClavicle
	RightShoulder
	RightElbow
	RightWrist

	LeftHip
	LeftKnee
	LeftAnkle
	LeftFoot
	LeftToe
	RightHip
	RightKnee
	RightAnkle
	RightFoot
	RightToe

	// Fingers: per hand, thumb/index/middle/ring/pinky × 3 phalanges,
	// ordered proximal → distal.
	LeftThumb1
	LeftThumb2
	LeftThumb3
	LeftIndex1
	LeftIndex2
	LeftIndex3
	LeftMiddle1
	LeftMiddle2
	LeftMiddle3
	LeftRing1
	LeftRing2
	LeftRing3
	LeftPinky1
	LeftPinky2
	LeftPinky3
	RightThumb1
	RightThumb2
	RightThumb3
	RightIndex1
	RightIndex2
	RightIndex3
	RightMiddle1
	RightMiddle2
	RightMiddle3
	RightRing1
	RightRing2
	RightRing3
	RightPinky1
	RightPinky2
	RightPinky3

	NumJoints int = iota
)

// jointSpec defines a joint's place in the hierarchy and its rest-pose
// offset from its parent (T-pose, y up, meters; subject faces +z, left is
// +x). Radius is the skinning capsule radius of the bone ending at this
// joint.
type jointSpec struct {
	name   string
	parent Joint
	offset geom.Vec3
	radius float64
}

var jointSpecs = [NumJoints]jointSpec{
	Pelvis:   {"pelvis", -1, geom.Vec3{Y: 0.95}, 0.13},
	Spine1:   {"spine1", Pelvis, geom.Vec3{Y: 0.12}, 0.13},
	Spine2:   {"spine2", Spine1, geom.Vec3{Y: 0.13}, 0.13},
	Spine3:   {"spine3", Spine2, geom.Vec3{Y: 0.13}, 0.14},
	Neck:     {"neck", Spine3, geom.Vec3{Y: 0.12}, 0.05},
	Head:     {"head", Neck, geom.Vec3{Y: 0.10}, 0.10},
	Jaw:      {"jaw", Head, geom.Vec3{Y: -0.01, Z: 0.06}, 0.035},
	LeftEye:  {"leftEye", Head, geom.Vec3{X: 0.035, Y: 0.05, Z: 0.09}, 0.014},
	RightEye: {"rightEye", Head, geom.Vec3{X: -0.035, Y: 0.05, Z: 0.09}, 0.014},

	LeftClavicle:  {"leftClavicle", Spine3, geom.Vec3{X: 0.09, Y: 0.05}, 0.045},
	LeftShoulder:  {"leftShoulder", LeftClavicle, geom.Vec3{X: 0.11}, 0.05},
	LeftElbow:     {"leftElbow", LeftShoulder, geom.Vec3{X: 0.26}, 0.045},
	LeftWrist:     {"leftWrist", LeftElbow, geom.Vec3{X: 0.25}, 0.035},
	RightClavicle: {"rightClavicle", Spine3, geom.Vec3{X: -0.09, Y: 0.05}, 0.045},
	RightShoulder: {"rightShoulder", RightClavicle, geom.Vec3{X: -0.11}, 0.05},
	RightElbow:    {"rightElbow", RightShoulder, geom.Vec3{X: -0.26}, 0.045},
	RightWrist:    {"rightWrist", RightElbow, geom.Vec3{X: -0.25}, 0.035},

	LeftHip:    {"leftHip", Pelvis, geom.Vec3{X: 0.09, Y: -0.05}, 0.08},
	LeftKnee:   {"leftKnee", LeftHip, geom.Vec3{Y: -0.40}, 0.065},
	LeftAnkle:  {"leftAnkle", LeftKnee, geom.Vec3{Y: -0.42}, 0.05},
	LeftFoot:   {"leftFoot", LeftAnkle, geom.Vec3{Y: -0.06, Z: 0.10}, 0.04},
	LeftToe:    {"leftToe", LeftFoot, geom.Vec3{Z: 0.06}, 0.025},
	RightHip:   {"rightHip", Pelvis, geom.Vec3{X: -0.09, Y: -0.05}, 0.08},
	RightKnee:  {"rightKnee", RightHip, geom.Vec3{Y: -0.40}, 0.065},
	RightAnkle: {"rightAnkle", RightKnee, geom.Vec3{Y: -0.42}, 0.05},
	RightFoot:  {"rightFoot", RightAnkle, geom.Vec3{Y: -0.06, Z: 0.10}, 0.04},
	RightToe:   {"rightToe", RightFoot, geom.Vec3{Z: 0.06}, 0.025},

	LeftThumb1:  {"leftThumb1", LeftWrist, geom.Vec3{X: 0.025, Z: 0.025}, 0.011},
	LeftThumb2:  {"leftThumb2", LeftThumb1, geom.Vec3{X: 0.032, Z: 0.012}, 0.010},
	LeftThumb3:  {"leftThumb3", LeftThumb2, geom.Vec3{X: 0.028}, 0.009},
	LeftIndex1:  {"leftIndex1", LeftWrist, geom.Vec3{X: 0.09, Z: 0.024}, 0.010},
	LeftIndex2:  {"leftIndex2", LeftIndex1, geom.Vec3{X: 0.035}, 0.009},
	LeftIndex3:  {"leftIndex3", LeftIndex2, geom.Vec3{X: 0.025}, 0.008},
	LeftMiddle1: {"leftMiddle1", LeftWrist, geom.Vec3{X: 0.092}, 0.010},
	LeftMiddle2: {"leftMiddle2", LeftMiddle1, geom.Vec3{X: 0.038}, 0.009},
	LeftMiddle3: {"leftMiddle3", LeftMiddle2, geom.Vec3{X: 0.027}, 0.008},
	LeftRing1:   {"leftRing1", LeftWrist, geom.Vec3{X: 0.088, Z: -0.02}, 0.009},
	LeftRing2:   {"leftRing2", LeftRing1, geom.Vec3{X: 0.034}, 0.009},
	LeftRing3:   {"leftRing3", LeftRing2, geom.Vec3{X: 0.025}, 0.008},
	LeftPinky1:  {"leftPinky1", LeftWrist, geom.Vec3{X: 0.082, Z: -0.038}, 0.008},
	LeftPinky2:  {"leftPinky2", LeftPinky1, geom.Vec3{X: 0.028}, 0.008},
	LeftPinky3:  {"leftPinky3", LeftPinky2, geom.Vec3{X: 0.02}, 0.007},

	RightThumb1:  {"rightThumb1", RightWrist, geom.Vec3{X: -0.025, Z: 0.025}, 0.011},
	RightThumb2:  {"rightThumb2", RightThumb1, geom.Vec3{X: -0.032, Z: 0.012}, 0.010},
	RightThumb3:  {"rightThumb3", RightThumb2, geom.Vec3{X: -0.028}, 0.009},
	RightIndex1:  {"rightIndex1", RightWrist, geom.Vec3{X: -0.09, Z: 0.024}, 0.010},
	RightIndex2:  {"rightIndex2", RightIndex1, geom.Vec3{X: -0.035}, 0.009},
	RightIndex3:  {"rightIndex3", RightIndex2, geom.Vec3{X: -0.025}, 0.008},
	RightMiddle1: {"rightMiddle1", RightWrist, geom.Vec3{X: -0.092}, 0.010},
	RightMiddle2: {"rightMiddle2", RightMiddle1, geom.Vec3{X: -0.038}, 0.009},
	RightMiddle3: {"rightMiddle3", RightMiddle2, geom.Vec3{X: -0.027}, 0.008},
	RightRing1:   {"rightRing1", RightWrist, geom.Vec3{X: -0.088, Z: -0.02}, 0.009},
	RightRing2:   {"rightRing2", RightRing1, geom.Vec3{X: -0.034}, 0.009},
	RightRing3:   {"rightRing3", RightRing2, geom.Vec3{X: -0.025}, 0.008},
	RightPinky1:  {"rightPinky1", RightWrist, geom.Vec3{X: -0.082, Z: -0.038}, 0.008},
	RightPinky2:  {"rightPinky2", RightPinky1, geom.Vec3{X: -0.028}, 0.008},
	RightPinky3:  {"rightPinky3", RightPinky2, geom.Vec3{X: -0.02}, 0.007},
}

// Name returns the joint's canonical name.
func (j Joint) Name() string {
	if j < 0 || int(j) >= NumJoints {
		return "invalid"
	}
	return jointSpecs[j].name
}

// Parent returns the joint's parent, or -1 for the root.
func (j Joint) Parent() Joint { return jointSpecs[j].parent }

// Skeleton holds the rest-pose hierarchy after shape parameters have been
// applied (shape scales bone offsets).
type Skeleton struct {
	Offsets [NumJoints]geom.Vec3 // rest offset from parent
	Radii   [NumJoints]float64   // capsule radius of the bone ending here
}

// NewSkeleton builds the canonical (zero-shape) skeleton.
func NewSkeleton() *Skeleton {
	var s Skeleton
	for j := 0; j < NumJoints; j++ {
		s.Offsets[j] = jointSpecs[j].offset
		s.Radii[j] = jointSpecs[j].radius
	}
	return &s
}

// shapedSkeleton applies shape coefficients. The first coefficients have
// interpretable meaning, mirroring SMPL-X's principal components:
//
//	0: overall height scale   1: limb length   2: torso girth
//	3: shoulder width         4: head size     5: leg/arm ratio
//
// Remaining coefficients perturb individual bone groups slightly so the
// space has full rank.
func shapedSkeleton(shape []float64) *Skeleton {
	s := NewSkeleton()
	get := func(i int) float64 {
		if i < len(shape) {
			return geom.Clamp(shape[i], -3, 3)
		}
		return 0
	}
	heightScale := 1 + 0.07*get(0)
	limbScale := 1 + 0.06*get(1)
	girth := 1 + 0.10*get(2)
	shoulders := 1 + 0.08*get(3)
	headScale := 1 + 0.05*get(4)
	legArm := 0.04 * get(5)

	for j := 0; j < NumJoints; j++ {
		off := s.Offsets[j].Scale(heightScale)
		switch Joint(j) {
		case LeftShoulder, RightShoulder, LeftClavicle, RightClavicle:
			off = off.Scale(shoulders)
		case LeftElbow, LeftWrist, RightElbow, RightWrist:
			off = off.Scale(limbScale * (1 - legArm))
		case LeftKnee, LeftAnkle, RightKnee, RightAnkle:
			off = off.Scale(limbScale * (1 + legArm))
		case Head, Jaw, LeftEye, RightEye:
			off = off.Scale(headScale)
		}
		// Small full-rank perturbation from the remaining coefficients.
		if k := 6 + (j % 10); k < len(shape) {
			off = off.Scale(1 + 0.01*geom.Clamp(shape[k], -3, 3))
		}
		s.Offsets[j] = off
		s.Radii[j] *= girth
		if Joint(j) == Head {
			s.Radii[j] = jointSpecs[j].radius * headScale
		}
	}
	return s
}

// globalTransforms runs forward kinematics: world transform per joint for
// the given pose (axis-angle per joint) and root translation.
func (s *Skeleton) globalTransforms(pose *[NumJoints]geom.Vec3, translation geom.Vec3) [NumJoints]geom.Mat4 {
	var g [NumJoints]geom.Mat4
	for j := 0; j < NumJoints; j++ {
		local := geom.RigidTransform(geom.QuatFromRotationVector(pose[j]).Mat3(), s.Offsets[j])
		if p := jointSpecs[j].parent; p < 0 {
			root := geom.Translation(translation)
			g[j] = root.Mul(local)
		} else {
			g[j] = g[p].Mul(local)
		}
	}
	return g
}

// restGlobalTransforms is forward kinematics with the zero pose.
func (s *Skeleton) restGlobalTransforms() [NumJoints]geom.Mat4 {
	var zero [NumJoints]geom.Vec3
	return s.globalTransforms(&zero, geom.Vec3{})
}

// JointPositions extracts world-space joint positions from transforms.
func JointPositions(g *[NumJoints]geom.Mat4) [NumJoints]geom.Vec3 {
	var p [NumJoints]geom.Vec3
	for j := 0; j < NumJoints; j++ {
		p[j] = g[j].TranslationPart()
	}
	return p
}
