package body

import (
	"math"
	"testing"

	"semholo/internal/geom"
)

// Shared across tests: model construction is the expensive part.
var testModel = NewModel(nil, ModelOptions{Detail: 1})

func TestTemplateValid(t *testing.T) {
	if err := testModel.Template.Validate(); err != nil {
		t.Fatalf("template invalid: %v", err)
	}
	if len(testModel.Template.Vertices) < 1000 {
		t.Errorf("template only %d vertices at detail 1", len(testModel.Template.Vertices))
	}
	b := testModel.Template.Bounds()
	// Roughly human-sized and centered on x.
	if b.Size().Y < 1.4 || b.Size().Y > 2.2 {
		t.Errorf("template height %.2f", b.Size().Y)
	}
	if math.Abs(b.Center().X) > 0.05 {
		t.Errorf("template off-center: %v", b.Center())
	}
}

func TestDetailScalesVertexCount(t *testing.T) {
	m1 := NewModel(nil, ModelOptions{Detail: 1})
	m2 := NewModel(nil, ModelOptions{Detail: 2})
	if len(m2.Template.Vertices) < 2*len(m1.Template.Vertices) {
		t.Errorf("detail 2 (%d verts) not ≥2× detail 1 (%d verts)",
			len(m2.Template.Vertices), len(m1.Template.Vertices))
	}
	// Detail 2 must be in the SMPL-X regime used to size Table 2.
	if n := len(m2.Template.Vertices); n < 5000 || n > 40000 {
		t.Errorf("detail-2 template has %d vertices, want 5k-40k", n)
	}
}

func TestWeightsNormalized(t *testing.T) {
	for vi, infl := range testModel.Weights {
		if len(infl) == 0 || len(infl) > maxInfluences {
			t.Fatalf("vertex %d has %d influences", vi, len(infl))
		}
		var sum float64
		for _, in := range infl {
			if in.W < 0 || in.W > 1.0001 {
				t.Fatalf("vertex %d weight %v out of range", vi, in.W)
			}
			if in.Joint <= 0 || int(in.Joint) >= NumJoints {
				t.Fatalf("vertex %d bound to invalid joint %d", vi, in.Joint)
			}
			sum += in.W
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("vertex %d weights sum to %v", vi, sum)
		}
	}
}

func TestRestPoseMeshMatchesTemplate(t *testing.T) {
	rest := testModel.Mesh(&Params{})
	if len(rest.Vertices) != len(testModel.Template.Vertices) {
		t.Fatal("vertex count changed")
	}
	for i := range rest.Vertices {
		if rest.Vertices[i].Dist(testModel.Template.Vertices[i]) > 1e-9 {
			t.Fatalf("vertex %d moved in rest pose by %v", i,
				rest.Vertices[i].Dist(testModel.Template.Vertices[i]))
		}
	}
}

func TestPosedMeshMovesArm(t *testing.T) {
	p := &Params{}
	p.Pose[LeftShoulder] = geom.V3(0, 0, -1.2) // arm down
	posed := testModel.Mesh(p)
	rest := testModel.Template
	// Vertices near the left wrist must move substantially; right-leg
	// vertices must not.
	g := testModel.JointGlobals(&Params{})
	restWrist := g[LeftWrist].TranslationPart()
	restAnkle := g[RightAnkle].TranslationPart()
	var wristMoved, ankleMoved float64
	var wristN, ankleN int
	for i, v := range rest.Vertices {
		d := posed.Vertices[i].Dist(v)
		if v.Dist(restWrist) < 0.08 {
			wristMoved += d
			wristN++
		}
		if v.Dist(restAnkle) < 0.08 {
			ankleMoved += d
			ankleN++
		}
	}
	if wristN == 0 || ankleN == 0 {
		t.Fatal("no probe vertices found")
	}
	if avg := wristMoved / float64(wristN); avg < 0.1 {
		t.Errorf("wrist vertices moved only %.3f m", avg)
	}
	if avg := ankleMoved / float64(ankleN); avg > 0.01 {
		t.Errorf("ankle vertices moved %.3f m on arm pose", avg)
	}
}

func TestKeypointsCountAndFinite(t *testing.T) {
	kps := testModel.Keypoints(&Params{})
	if len(kps) != KeypointCount {
		t.Fatalf("got %d keypoints, want %d", len(kps), KeypointCount)
	}
	for i, k := range kps {
		if !k.IsFinite() {
			t.Fatalf("keypoint %d not finite: %v", i, k)
		}
	}
	// The taxonomy cites ~100 keypoints as sufficient; ours must be in
	// the tens-to-low-hundreds regime.
	if KeypointCount < 50 || KeypointCount > 150 {
		t.Errorf("keypoint count %d outside expected regime", KeypointCount)
	}
}

func TestKeypointsTrackPose(t *testing.T) {
	rest := testModel.Keypoints(&Params{})
	p := &Params{}
	p.Pose[LeftElbow] = geom.V3(0, 0, 1.3)
	posed := testModel.Keypoints(p)
	if posed[LeftWrist].Dist(rest[LeftWrist]) < 0.1 {
		t.Error("wrist keypoint did not follow elbow")
	}
	if posed[RightWrist].Dist(rest[RightWrist]) > 1e-9 {
		t.Error("right wrist keypoint moved")
	}
}

func TestExpressionJawOpens(t *testing.T) {
	rest := testModel.Mesh(&Params{})
	p := &Params{}
	p.Expression[0] = 1 // jaw fully open
	open := testModel.Mesh(p)
	// Some vertices (jaw region) must move; total movement small.
	var moved int
	for i := range rest.Vertices {
		if open.Vertices[i].Dist(rest.Vertices[i]) > 0.005 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("jaw-open expression moved nothing")
	}
	if moved > len(rest.Vertices)/4 {
		t.Errorf("jaw-open expression moved %d/%d vertices", moved, len(rest.Vertices))
	}
}

func TestExpressionSmileLocalized(t *testing.T) {
	p := &Params{}
	p.Expression[1] = 1.5
	smiled := testModel.Mesh(p)
	rest := testModel.Mesh(&Params{})
	g := testModel.JointGlobals(&Params{})
	head := g[Head].TranslationPart()
	for i := range rest.Vertices {
		d := smiled.Vertices[i].Dist(rest.Vertices[i])
		if d > 1e-9 && rest.Vertices[i].Dist(head) > 0.3 {
			t.Fatalf("smile moved vertex %d far from head (%.2f m away)", i, rest.Vertices[i].Dist(head))
		}
	}
}

func TestMotionContinuity(t *testing.T) {
	for _, mk := range []struct {
		name string
		m    Motion
	}{
		{"talking", Talking(nil)},
		{"walking", Walking(nil)},
		{"waving", Waving(nil)},
		{"still", Still(nil)},
	} {
		prev := mk.m.At(0)
		for i := 1; i <= 30; i++ {
			cur := mk.m.At(float64(i) / 30)
			d := prev.Distance(cur)
			if d > 0.2 {
				t.Errorf("%s: frame-to-frame pose distance %v at frame %d", mk.name, d, i)
			}
			prev = cur
		}
	}
}

func TestSampleCount(t *testing.T) {
	frames := Sample(Talking(nil), 0, 30, 10)
	if len(frames) != 10 {
		t.Fatalf("Sample returned %d frames", len(frames))
	}
	if frames[0].Distance(frames[9]) == 0 {
		t.Error("talking motion is frozen")
	}
}

func BenchmarkPoseMesh(b *testing.B) {
	p := Talking(nil).At(1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testModel.Mesh(p)
	}
}

func BenchmarkKeypoints(b *testing.B) {
	p := Talking(nil).At(1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		testModel.Keypoints(p)
	}
}
