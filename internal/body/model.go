package body

import (
	"math"
	"sync/atomic"

	"semholo/internal/geom"
	"semholo/internal/mesh"
)

// Influence is one skinning weight: how much a joint's bone moves a
// template vertex.
type Influence struct {
	Joint Joint
	W     float64
}

// maxInfluences bounds the influences per vertex (standard LBS practice).
const maxInfluences = 4

// exprAnchor defines one expression blendshape component: template
// vertices within ~3σ of the anchor move along Dir per unit coefficient.
type exprAnchor struct {
	At    geom.Vec3 // relative to the rest head joint
	Dir   geom.Vec3
	Sigma float64
}

// Model is a posed-on-demand parametric human: a rest-pose template mesh,
// skinning weights, and expression blendshapes, all derived from shape
// coefficients. Building a Model is the analogue of SMPL-X's shape stage;
// posing one (Mesh) is the per-frame decode stage of the traditional
// pipeline.
type Model struct {
	Skeleton *Skeleton
	Template *mesh.Mesh
	Weights  [][]Influence // per template vertex

	restInv   [NumJoints]geom.Mat4
	exprBasis [NumExpression][]exprDisp

	// fkMemo caches the last forward-kinematics result. The rasterizer,
	// keypoint projector, and SDF reconstructor each ask for the same
	// frame's transforms back to back; one FK pass serves all of them.
	fkMemo atomic.Pointer[jointMemo]
}

// jointMemo is one memoized forward-kinematics result. Params is
// comparable (fixed-size arrays of float64), so a bitwise pose match is
// a single struct comparison.
type jointMemo struct {
	params  Params
	globals [NumJoints]geom.Mat4
}

type exprDisp struct {
	vertex int
	d      geom.Vec3
}

// Detail controls template density; Detail=2 yields a template in the
// ~10k-vertex regime of SMPL-X (10,475 vertices), which Table 2's
// traditional baseline is sized against.
type ModelOptions struct {
	Detail int // ≥1; default 2
}

// NewModel builds the template for the given shape coefficients.
func NewModel(shape []float64, opt ModelOptions) *Model {
	if opt.Detail < 1 {
		opt.Detail = 2
	}
	skel := shapedSkeleton(shape)
	rest := skel.restGlobalTransforms()
	restPos := JointPositions(&rest)

	m := &Model{Skeleton: skel}
	m.Template = buildTemplate(skel, &restPos, opt.Detail)
	m.Weights = computeWeights(m.Template.Vertices, skel, &restPos)
	for j := 0; j < NumJoints; j++ {
		m.restInv[j] = rest[j].InverseRigid()
	}
	m.buildExpressionBasis(restPos[Head])
	return m
}

// bone i is the segment from parent(i) to i; root has no bone.
func boneSegment(restPos *[NumJoints]geom.Vec3, j Joint) (a, b geom.Vec3, ok bool) {
	p := jointSpecs[j].parent
	if p < 0 {
		return geom.Vec3{}, geom.Vec3{}, false
	}
	return restPos[p], restPos[j], true
}

// buildTemplate creates one capsule per bone (plus a head ellipsoid) in
// the rest pose and merges them. The result is a closed-ish "body suit"
// whose vertex count scales with detail².
func buildTemplate(skel *Skeleton, restPos *[NumJoints]geom.Vec3, detail int) *mesh.Mesh {
	out := &mesh.Mesh{}
	for j := 0; j < NumJoints; j++ {
		a, b, ok := boneSegment(restPos, Joint(j))
		if !ok {
			continue
		}
		r := skel.Radii[j]
		length := b.Dist(a)
		if length < 1e-6 && Joint(j) != Head {
			continue
		}
		circ, rings := 8*detail, 4*detail
		if isFinger(Joint(j)) || Joint(j) == Jaw || Joint(j) == LeftEye || Joint(j) == RightEye {
			circ, rings = 3*detail, 2*detail
		} else if isTorso(Joint(j)) {
			circ, rings = 10*detail, 5*detail
		}
		cap := capsule(a, b, r, circ, rings)
		out.Merge(cap)
	}
	// Head: a dedicated ellipsoid centered slightly above the head joint.
	headR := skel.Radii[Head]
	head := mesh.UnitSphere(minInt(2+detail/2, 4))
	head.Normals = nil
	head.Transform(geom.Scaling(geom.V3(headR*0.95, headR*1.25, headR*1.05)))
	head.Transform(geom.Translation(restPos[Head].Add(geom.V3(0, headR*0.35, 0))))
	out.Merge(head)
	out.ComputeNormals()
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func isFinger(j Joint) bool { return j >= LeftThumb1 }

func isTorso(j Joint) bool {
	switch j {
	case Spine1, Spine2, Spine3, Neck, LeftHip, RightHip:
		return true
	}
	return false
}

// capsule builds a closed capsule mesh from a to b with the given radius.
func capsule(a, b geom.Vec3, r float64, circ, rings int) *mesh.Mesh {
	if circ < 3 {
		circ = 3
	}
	if rings < 1 {
		rings = 1
	}
	axis := b.Sub(a)
	length := axis.Len()
	var z geom.Vec3
	if length < 1e-9 {
		z = geom.V3(0, 1, 0)
	} else {
		z = axis.Scale(1 / length)
	}
	// Orthonormal frame around the axis.
	var x geom.Vec3
	if math.Abs(z.X) < 0.9 {
		x = geom.V3(1, 0, 0).Sub(z.Scale(z.X)).Normalize()
	} else {
		x = geom.V3(0, 1, 0).Sub(z.Scale(z.Y)).Normalize()
	}
	y := z.Cross(x)

	m := &mesh.Mesh{}
	capRings := 2 // hemispherical cap subdivisions
	// Ring parameters: t in [-capRings .. rings+capRings]; cap rings bend
	// around the ends.
	ringCenterAndRadius := func(t int) (geom.Vec3, float64) {
		switch {
		case t < 0: // bottom cap
			ang := float64(-t) / float64(capRings+1) * math.Pi / 2
			return a.Sub(z.Scale(r * math.Sin(ang))), r * math.Cos(ang)
		case t > rings: // top cap
			ang := float64(t-rings) / float64(capRings+1) * math.Pi / 2
			return b.Add(z.Scale(r * math.Sin(ang))), r * math.Cos(ang)
		default:
			f := float64(t) / float64(rings)
			return a.Lerp(b, f), r
		}
	}
	// Bottom apex, rings, top apex.
	bottom := len(m.Vertices)
	m.Vertices = append(m.Vertices, a.Sub(z.Scale(r)))
	ringStart := make([]int, 0, rings+2*capRings+1)
	for t := -capRings; t <= rings+capRings; t++ {
		c, rr := ringCenterAndRadius(t)
		ringStart = append(ringStart, len(m.Vertices))
		for s := 0; s < circ; s++ {
			ang := 2 * math.Pi * float64(s) / float64(circ)
			dir := x.Scale(math.Cos(ang)).Add(y.Scale(math.Sin(ang)))
			m.Vertices = append(m.Vertices, c.Add(dir.Scale(rr)))
		}
	}
	top := len(m.Vertices)
	m.Vertices = append(m.Vertices, b.Add(z.Scale(r)))

	// Fans at the apexes. Winding: outward normals.
	first := ringStart[0]
	for s := 0; s < circ; s++ {
		m.Faces = append(m.Faces, mesh.Face{A: bottom, B: first + (s+1)%circ, C: first + s})
	}
	for ri := 0; ri+1 < len(ringStart); ri++ {
		r0, r1 := ringStart[ri], ringStart[ri+1]
		for s := 0; s < circ; s++ {
			s1 := (s + 1) % circ
			m.Faces = append(m.Faces,
				mesh.Face{A: r0 + s, B: r0 + s1, C: r1 + s},
				mesh.Face{A: r0 + s1, B: r1 + s1, C: r1 + s},
			)
		}
	}
	last := ringStart[len(ringStart)-1]
	for s := 0; s < circ; s++ {
		m.Faces = append(m.Faces, mesh.Face{A: top, B: last + s, C: last + (s+1)%circ})
	}
	return m
}

// computeWeights assigns up to maxInfluences bone weights per vertex by
// proximity to bone segments, with a Gaussian falloff that blends
// smoothly across joints.
func computeWeights(verts []geom.Vec3, skel *Skeleton, restPos *[NumJoints]geom.Vec3) [][]Influence {
	weights := make([][]Influence, len(verts))
	const sigma = 0.04
	for vi, v := range verts {
		best := make([]Influence, 0, maxInfluences+1)
		for j := 1; j < NumJoints; j++ { // skip root (no bone)
			a, b, ok := boneSegment(restPos, Joint(j))
			if !ok {
				continue
			}
			d := geom.SegDist(v, a, b) - skel.Radii[j]
			if d < 0 {
				d = 0
			}
			if d > 3*sigma {
				continue
			}
			w := math.Exp(-d * d / (2 * sigma * sigma))
			// Insert into the running top-k.
			best = append(best, Influence{Joint: Joint(j), W: w})
			for i := len(best) - 1; i > 0 && best[i].W > best[i-1].W; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			if len(best) > maxInfluences {
				best = best[:maxInfluences]
			}
		}
		if len(best) == 0 {
			// Far from every bone (shouldn't happen for capsule-built
			// vertices): bind to the nearest joint rigidly.
			nearest, nd := Joint(1), math.Inf(1)
			for j := 1; j < NumJoints; j++ {
				if d := restPos[j].Dist(v); d < nd {
					nearest, nd = Joint(j), d
				}
			}
			best = append(best, Influence{Joint: nearest, W: 1})
		}
		var sum float64
		for _, in := range best {
			sum += in.W
		}
		for i := range best {
			best[i].W /= sum
		}
		weights[vi] = best
	}
	return weights
}

// buildExpressionBasis precomputes sparse vertex displacement fields for
// the facial expression coefficients. Expression[0] (jaw open) acts on
// the jaw joint instead and has no vertex field.
func (m *Model) buildExpressionBasis(headRest geom.Vec3) {
	anchors := [NumExpression][]exprAnchor{
		0: nil, // jaw open: joint rotation
		1: { // smile / pout: mouth corners
			{At: geom.V3(0.045, -0.045, 0.075), Dir: geom.V3(0.004, 0.010, 0.002), Sigma: 0.025},
			{At: geom.V3(-0.045, -0.045, 0.075), Dir: geom.V3(-0.004, 0.010, 0.002), Sigma: 0.025},
		},
		2: { // brow raise
			{At: geom.V3(0.03, 0.06, 0.09), Dir: geom.V3(0, 0.012, 0), Sigma: 0.02},
			{At: geom.V3(-0.03, 0.06, 0.09), Dir: geom.V3(0, 0.012, 0), Sigma: 0.02},
		},
		3: { // cheek puff
			{At: geom.V3(0.055, -0.03, 0.05), Dir: geom.V3(0.012, 0, 0.004), Sigma: 0.03},
			{At: geom.V3(-0.055, -0.03, 0.05), Dir: geom.V3(-0.012, 0, 0.004), Sigma: 0.03},
		},
		4: { // lip press
			{At: geom.V3(0, -0.05, 0.09), Dir: geom.V3(0, -0.006, -0.004), Sigma: 0.02},
		},
		5: { // nose wrinkle
			{At: geom.V3(0, 0.0, 0.10), Dir: geom.V3(0, 0.006, -0.003), Sigma: 0.015},
		},
		6: { // left eye squint
			{At: geom.V3(0.035, 0.05, 0.09), Dir: geom.V3(0, -0.008, 0), Sigma: 0.015},
		},
		7: { // right eye squint
			{At: geom.V3(-0.035, 0.05, 0.09), Dir: geom.V3(0, -0.008, 0), Sigma: 0.015},
		},
		8: { // chin dimple
			{At: geom.V3(0, -0.09, 0.07), Dir: geom.V3(0, 0, 0.006), Sigma: 0.02},
		},
		9: { // temples
			{At: geom.V3(0.06, 0.04, 0.02), Dir: geom.V3(0.005, 0, 0), Sigma: 0.02},
			{At: geom.V3(-0.06, 0.04, 0.02), Dir: geom.V3(-0.005, 0, 0), Sigma: 0.02},
		},
	}
	for k, list := range anchors {
		for _, anc := range list {
			at := headRest.Add(anc.At)
			for vi, v := range m.Template.Vertices {
				d := v.Dist(at)
				if d > 3*anc.Sigma {
					continue
				}
				f := math.Exp(-d * d / (2 * anc.Sigma * anc.Sigma))
				m.exprBasis[k] = append(m.exprBasis[k], exprDisp{vertex: vi, d: anc.Dir.Scale(f)})
			}
		}
	}
}

// effectivePose returns the pose with expression-driven joint articulation
// (jaw opening) folded in.
func effectivePose(p *Params) [NumJoints]geom.Vec3 {
	pose := p.Pose
	// Jaw open: rotate the jaw down around +X by up to ~0.45 rad.
	pose[Jaw] = pose[Jaw].Add(geom.V3(0.45*geom.Clamp(p.Expression[0], 0, 1), 0, 0))
	return pose
}

// Mesh poses the template with linear blend skinning and applies the
// expression blendshapes, returning a new mesh. This is the per-frame
// "PtCl/Mesh synthesis" stage of Figure 1's traditional pipeline and the
// ground-truth generator for the keypoint pipeline's quality metrics.
func (m *Model) Mesh(p *Params) *mesh.Mesh {
	g := m.JointGlobals(p)
	var skin [NumJoints]geom.Mat4
	for j := 0; j < NumJoints; j++ {
		skin[j] = g[j].Mul(m.restInv[j])
	}
	// Expression displacement in rest space, then skinning.
	displaced := m.Template.Vertices
	needCopy := false
	for k := 1; k < NumExpression; k++ {
		if p.Expression[k] != 0 && len(m.exprBasis[k]) > 0 {
			needCopy = true
		}
	}
	if needCopy {
		displaced = append([]geom.Vec3(nil), m.Template.Vertices...)
		for k := 1; k < NumExpression; k++ {
			c := geom.Clamp(p.Expression[k], -2, 2)
			if c == 0 {
				continue
			}
			for _, ed := range m.exprBasis[k] {
				displaced[ed.vertex] = displaced[ed.vertex].Add(ed.d.Scale(c))
			}
		}
	}

	out := &mesh.Mesh{
		Vertices: make([]geom.Vec3, len(displaced)),
		Faces:    m.Template.Faces, // shared: connectivity never changes
	}
	for vi, v := range displaced {
		var acc geom.Vec3
		for _, in := range m.Weights[vi] {
			acc = acc.Add(skin[in.Joint].TransformPoint(v).Scale(in.W))
		}
		out.Vertices[vi] = acc
	}
	out.ComputeNormals()
	return out
}

// KeypointCount is the number of keypoints Keypoints returns: all joints
// plus fingertip, nose, ear, and head-top landmarks — the ~70-point
// full-body set (body + hands + face) the taxonomy describes (§2.3).
const KeypointCount = NumJoints + 10 + 4

// Keypoints returns world-space keypoint positions for the given params
// via forward kinematics. Index 0..NumJoints-1 are the joints in order;
// the remainder are landmarks.
func (m *Model) Keypoints(p *Params) []geom.Vec3 {
	g := m.JointGlobals(p)
	pts := make([]geom.Vec3, 0, KeypointCount)
	for j := 0; j < NumJoints; j++ {
		pts = append(pts, g[j].TranslationPart())
	}
	// Fingertips: extend the distal phalanx by ~60% of its offset.
	tips := []Joint{
		LeftThumb3, LeftIndex3, LeftMiddle3, LeftRing3, LeftPinky3,
		RightThumb3, RightIndex3, RightMiddle3, RightRing3, RightPinky3,
	}
	for _, j := range tips {
		ext := m.Skeleton.Offsets[j].Scale(0.6)
		pts = append(pts, g[j].TransformPoint(ext))
	}
	// Face landmarks in the head frame: nose, chin via jaw, ears, head top.
	headR := m.Skeleton.Radii[Head]
	pts = append(pts,
		g[Head].TransformPoint(geom.V3(0, 0, headR*1.05)),     // nose
		g[Head].TransformPoint(geom.V3(headR*0.95, 0.01, 0)),  // left ear
		g[Head].TransformPoint(geom.V3(-headR*0.95, 0.01, 0)), // right ear
		g[Head].TransformPoint(geom.V3(0, headR*1.6, 0)),      // head top
	)
	return pts
}

// JointGlobals exposes the forward-kinematics transforms for a pose —
// used by the avatar reconstructor's implicit SDF, the mesh skinner, and
// the keypoint projector. Back-to-back calls with bitwise-identical
// parameters return a memoized result (a lock-free single-entry cache,
// safe for concurrent callers).
func (m *Model) JointGlobals(p *Params) [NumJoints]geom.Mat4 {
	if mm := m.fkMemo.Load(); mm != nil && mm.params == *p {
		return mm.globals
	}
	pose := effectivePose(p)
	g := m.Skeleton.globalTransforms(&pose, p.Translation)
	m.fkMemo.Store(&jointMemo{params: *p, globals: g})
	return g
}
