package body

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"semholo/internal/geom"
)

// NumShape is the number of shape (beta) coefficients, and NumExpression
// the number of facial expression coefficients — matching SMPL-X's
// 10-/10-coefficient default with a few extra shape PCs.
const (
	NumShape      = 16
	NumExpression = 10
)

// Params is one frame of body state: the exact payload keypoint-based
// semantic communication puts on the wire ("3D pose aligned with SMPL-X",
// §4.2). Marshal produces the ~1.9 KB-per-frame representation measured
// in Table 2.
type Params struct {
	// Pose holds one axis-angle rotation vector per joint, relative to
	// the parent bone.
	Pose [NumJoints]geom.Vec3
	// Translation places the pelvis root in world space.
	Translation geom.Vec3
	// Shape holds the body shape coefficients (identity; static across a
	// session).
	Shape [NumShape]float64
	// Expression holds facial expression coefficients. Expression[0] is
	// jaw opening, Expression[1] mouth corner lift (smile/pout),
	// Expression[2] brow raise; the rest perturb the face region.
	Expression [NumExpression]float64
}

// paramsMagic precedes every marshaled frame.
var paramsMagic = [2]byte{'B', 'P'}

// MarshaledSize is the exact wire size of one marshaled Params frame.
const MarshaledSize = 2 + // magic
	NumJoints*3*8 + // pose
	3*8 + // translation
	NumShape*8 +
	NumExpression*8

// Marshal encodes p into a fixed-size binary frame (little-endian
// float64s). The raw size is deliberately comparable to the paper's
// measured 1.91 KB/frame SMPL-X payload.
func (p *Params) Marshal() []byte {
	buf := make([]byte, 0, MarshaledSize)
	buf = append(buf, paramsMagic[0], paramsMagic[1])
	putF := func(f float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	for j := 0; j < NumJoints; j++ {
		putF(p.Pose[j].X)
		putF(p.Pose[j].Y)
		putF(p.Pose[j].Z)
	}
	putF(p.Translation.X)
	putF(p.Translation.Y)
	putF(p.Translation.Z)
	for _, s := range p.Shape {
		putF(s)
	}
	for _, e := range p.Expression {
		putF(e)
	}
	return buf
}

// ErrBadFrame is returned by Unmarshal for malformed frames.
var ErrBadFrame = errors.New("body: malformed params frame")

// UnmarshalParams decodes a frame produced by Marshal.
func UnmarshalParams(data []byte) (*Params, error) {
	if len(data) != MarshaledSize {
		return nil, fmt.Errorf("%w: size %d, want %d", ErrBadFrame, len(data), MarshaledSize)
	}
	if data[0] != paramsMagic[0] || data[1] != paramsMagic[1] {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	pos := 2
	getF := func() float64 {
		f := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		return f
	}
	p := &Params{}
	for j := 0; j < NumJoints; j++ {
		p.Pose[j] = geom.V3(getF(), getF(), getF())
	}
	p.Translation = geom.V3(getF(), getF(), getF())
	for i := range p.Shape {
		p.Shape[i] = getF()
	}
	for i := range p.Expression {
		p.Expression[i] = getF()
	}
	for j := 0; j < NumJoints; j++ {
		if !p.Pose[j].IsFinite() {
			return nil, fmt.Errorf("%w: non-finite pose for joint %s", ErrBadFrame, Joint(j).Name())
		}
	}
	if !p.Translation.IsFinite() {
		return nil, fmt.Errorf("%w: non-finite translation", ErrBadFrame)
	}
	return p, nil
}

// Lerp interpolates between two parameter frames: poses through
// quaternion slerp (valid for the axis-angle parameterization where plain
// linear blending is not), everything else linearly. Used by the jitter
// buffer to conceal late frames and by motion generators.
func (p *Params) Lerp(q *Params, t float64) *Params {
	out := &Params{}
	for j := 0; j < NumJoints; j++ {
		qa := geom.QuatFromRotationVector(p.Pose[j])
		qb := geom.QuatFromRotationVector(q.Pose[j])
		out.Pose[j] = qa.Slerp(qb, t).RotationVector()
	}
	out.Translation = p.Translation.Lerp(q.Translation, t)
	for i := range p.Shape {
		out.Shape[i] = p.Shape[i] + (q.Shape[i]-p.Shape[i])*t
	}
	for i := range p.Expression {
		out.Expression[i] = p.Expression[i] + (q.Expression[i]-p.Expression[i])*t
	}
	return out
}

// Distance returns a scalar pose dissimilarity: mean geodesic rotation
// angle across joints plus translation distance. Used as a reconstruction
// fidelity metric for the keypoint pipeline.
func (p *Params) Distance(q *Params) float64 {
	var sum float64
	for j := 0; j < NumJoints; j++ {
		qa := geom.QuatFromRotationVector(p.Pose[j])
		qb := geom.QuatFromRotationVector(q.Pose[j])
		d := math.Abs(qa.Dot(qb))
		sum += 2 * math.Acos(geom.Clamp(d, 0, 1))
	}
	return sum/float64(NumJoints) + p.Translation.Dist(q.Translation)
}
