package body

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"semholo/internal/geom"
)

func TestSkeletonHierarchyValid(t *testing.T) {
	for j := 0; j < NumJoints; j++ {
		p := Joint(j).Parent()
		if j == int(Pelvis) {
			if p != -1 {
				t.Errorf("root has parent %d", p)
			}
			continue
		}
		if p < 0 || int(p) >= NumJoints {
			t.Errorf("joint %s has invalid parent %d", Joint(j).Name(), p)
		}
		if int(p) >= j {
			t.Errorf("joint %s (%d) has parent %s (%d) not preceding it", Joint(j).Name(), j, p.Name(), p)
		}
	}
}

func TestJointNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for j := 0; j < NumJoints; j++ {
		n := Joint(j).Name()
		if n == "" || n == "invalid" {
			t.Errorf("joint %d has bad name %q", j, n)
		}
		if seen[n] {
			t.Errorf("duplicate joint name %q", n)
		}
		seen[n] = true
	}
	if Joint(-1).Name() != "invalid" || Joint(NumJoints).Name() != "invalid" {
		t.Error("out-of-range joints should be invalid")
	}
}

func TestRestPosePlausible(t *testing.T) {
	s := NewSkeleton()
	g := s.restGlobalTransforms()
	pos := JointPositions(&g)
	// Head above pelvis, pelvis above feet, total height ~1.5-1.9 m.
	if pos[Head].Y <= pos[Pelvis].Y {
		t.Error("head below pelvis in rest pose")
	}
	if pos[LeftAnkle].Y >= pos[Pelvis].Y {
		t.Error("ankle above pelvis")
	}
	height := pos[Head].Y + 0.1 - (pos[LeftAnkle].Y - 0.05)
	if height < 1.4 || height > 2.0 {
		t.Errorf("implausible height %.2f m", height)
	}
	// Left/right symmetry.
	pairs := [][2]Joint{
		{LeftShoulder, RightShoulder},
		{LeftWrist, RightWrist},
		{LeftKnee, RightKnee},
		{LeftToe, RightToe},
		{LeftIndex3, RightIndex3},
	}
	for _, pr := range pairs {
		l, r := pos[pr[0]], pos[pr[1]]
		if math.Abs(l.X+r.X) > 1e-9 || math.Abs(l.Y-r.Y) > 1e-9 || math.Abs(l.Z-r.Z) > 1e-9 {
			t.Errorf("asymmetry %s=%v vs %s=%v", pr[0].Name(), l, pr[1].Name(), r)
		}
	}
}

func TestForwardKinematicsPropagates(t *testing.T) {
	s := NewSkeleton()
	var pose [NumJoints]geom.Vec3
	// Bend the left elbow 90° about z: the wrist moves, the right arm
	// doesn't.
	pose[LeftElbow] = geom.V3(0, 0, math.Pi/2)
	g := s.globalTransforms(&pose, geom.Vec3{})
	rest := s.restGlobalTransforms()
	posed := JointPositions(&g)
	restPos := JointPositions(&rest)
	if posed[LeftWrist].Dist(restPos[LeftWrist]) < 0.1 {
		t.Error("left wrist did not move when elbow bent")
	}
	if posed[RightWrist].Dist(restPos[RightWrist]) > 1e-9 {
		t.Error("right wrist moved when left elbow bent")
	}
	if posed[LeftElbow].Dist(restPos[LeftElbow]) > 1e-9 {
		t.Error("elbow joint itself moved")
	}
	// Bone length preserved.
	lr := restPos[LeftWrist].Dist(restPos[LeftElbow])
	lp := posed[LeftWrist].Dist(posed[LeftElbow])
	if math.Abs(lr-lp) > 1e-9 {
		t.Errorf("forearm length changed: %v -> %v", lr, lp)
	}
}

func TestTranslationMovesEverything(t *testing.T) {
	s := NewSkeleton()
	var pose [NumJoints]geom.Vec3
	tr := geom.V3(1, 2, 3)
	g := s.globalTransforms(&pose, tr)
	rest := s.restGlobalTransforms()
	gp, rp := JointPositions(&g), JointPositions(&rest)
	for j := 0; j < NumJoints; j++ {
		if gp[j].Dist(rp[j].Add(tr)) > 1e-9 {
			t.Fatalf("joint %s not translated rigidly", Joint(j).Name())
		}
	}
}

func TestParamsMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := &Params{Translation: geom.V3(0.1, -0.2, 0.3)}
	for j := 0; j < NumJoints; j++ {
		p.Pose[j] = geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.3)
	}
	for i := range p.Shape {
		p.Shape[i] = rng.NormFloat64()
	}
	for i := range p.Expression {
		p.Expression[i] = rng.Float64()
	}
	buf := p.Marshal()
	if len(buf) != MarshaledSize {
		t.Fatalf("marshaled size %d, want %d", len(buf), MarshaledSize)
	}
	q, err := UnmarshalParams(buf)
	if err != nil {
		t.Fatal(err)
	}
	if *q != *p {
		t.Error("round trip changed params")
	}
}

func TestParamsFrameSizeRegime(t *testing.T) {
	// The paper reports 1.91 KB/frame for SMPL-X-aligned pose data
	// (§4.2). Our frame must be in the same regime: 1-2.5 KB.
	if MarshaledSize < 1000 || MarshaledSize > 2500 {
		t.Errorf("frame size %d bytes outside the 1-2.5 KB regime", MarshaledSize)
	}
}

func TestUnmarshalRejectsBad(t *testing.T) {
	if _, err := UnmarshalParams(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalParams(make([]byte, MarshaledSize-1)); err == nil {
		t.Error("short frame accepted")
	}
	good := (&Params{}).Marshal()
	good[0] = 'X'
	if _, err := UnmarshalParams(good); err == nil {
		t.Error("bad magic accepted")
	}
	// NaN pose.
	p := &Params{}
	p.Pose[3] = geom.V3(math.NaN(), 0, 0)
	if _, err := UnmarshalParams(p.Marshal()); err == nil {
		t.Error("NaN pose accepted")
	}
}

func TestParamsMarshalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Params{}
		for j := 0; j < NumJoints; j++ {
			p.Pose[j] = geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		q, err := UnmarshalParams(p.Marshal())
		return err == nil && *q == *p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParamsLerpEndpoints(t *testing.T) {
	a := Talking(nil).At(0)
	b := Talking(nil).At(2)
	l0 := a.Lerp(b, 0)
	l1 := a.Lerp(b, 1)
	if a.Distance(l0) > 1e-6 {
		t.Errorf("Lerp(0) distance %v", a.Distance(l0))
	}
	if b.Distance(l1) > 1e-6 {
		t.Errorf("Lerp(1) distance %v", b.Distance(l1))
	}
	mid := a.Lerp(b, 0.5)
	if a.Distance(mid) > a.Distance(b) {
		t.Error("midpoint farther than endpoint")
	}
}

func TestShapeChangesSkeleton(t *testing.T) {
	tall := shapedSkeleton([]float64{3})
	short := shapedSkeleton([]float64{-3})
	gt := tall.restGlobalTransforms()
	gs := short.restGlobalTransforms()
	ht := JointPositions(&gt)[Head].Y
	hs := JointPositions(&gs)[Head].Y
	if ht <= hs {
		t.Errorf("shape[0]=+3 head %.2f not taller than -3 head %.2f", ht, hs)
	}
}

// Property: forward kinematics preserves bone lengths for any pose.
func TestFKPreservesBoneLengthsQuick(t *testing.T) {
	s := NewSkeleton()
	rest := s.restGlobalTransforms()
	restPos := JointPositions(&rest)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pose [NumJoints]geom.Vec3
		for j := range pose {
			pose[j] = geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.5)
		}
		g := s.globalTransforms(&pose, geom.V3(rng.NormFloat64(), 0, rng.NormFloat64()))
		pos := JointPositions(&g)
		for j := 1; j < NumJoints; j++ {
			p := Joint(j).Parent()
			restLen := restPos[j].Dist(restPos[p])
			posedLen := pos[j].Dist(pos[p])
			if math.Abs(restLen-posedLen) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
