package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuatIdentityRotate(t *testing.T) {
	v := V3(1, 2, 3)
	if got := QuatIdentity().Rotate(v); !vecAlmostEq(got, v, eps) {
		t.Errorf("identity rotate = %v", got)
	}
}

func TestQuatAxisAngle(t *testing.T) {
	q := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	got := q.Rotate(V3(1, 0, 0))
	if !vecAlmostEq(got, V3(0, 1, 0), eps) {
		t.Errorf("rotZ(90°)·x = %v, want +Y", got)
	}
}

func TestQuatMat3Agree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		q := Quat{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Normalize()
		v := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		a := q.Rotate(v)
		b := q.Mat3().MulVec(v)
		if !vecAlmostEq(a, b, 1e-9*(v.Len()+1)) {
			t.Fatalf("Rotate=%v Mat3=%v", a, b)
		}
	}
}

func TestQuatRotationVectorRoundTrip(t *testing.T) {
	f := func(x, y, z float64) bool {
		rv := V3(x, y, z)
		if !rv.IsFinite() {
			return true
		}
		// Keep the angle within (−π, π) so the representation is unique.
		if l := rv.Len(); l > math.Pi-1e-3 {
			if l == 0 {
				return true
			}
			rv = rv.Scale((math.Pi - 1e-3) / l * rand.Float64())
		}
		back := QuatFromRotationVector(rv).RotationVector()
		return vecAlmostEq(back, rv, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuatRotatePreservesLength(t *testing.T) {
	f := func(qw, qx, qy, qz, vx, vy, vz float64) bool {
		q := Quat{qw, qx, qy, qz}
		if q.Norm() < 1e-6 || q.Norm() > 1e6 {
			return true
		}
		q = q.Normalize()
		v := V3(vx, vy, vz)
		if !v.IsFinite() || v.Len() > 1e6 {
			return true
		}
		return almostEq(q.Rotate(v).Len(), v.Len(), 1e-8*(v.Len()+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatMulComposition(t *testing.T) {
	qa := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	qb := QuatFromAxisAngle(V3(1, 0, 0), math.Pi/2)
	v := V3(0, 1, 0)
	// qa.Mul(qb) applies qb first.
	got := qa.Mul(qb).Rotate(v)
	want := qa.Rotate(qb.Rotate(v))
	if !vecAlmostEq(got, want, eps) {
		t.Errorf("composition: got %v want %v", got, want)
	}
}

func TestQuatConjugateInverts(t *testing.T) {
	q := QuatFromAxisAngle(V3(1, 2, -1), 0.8)
	v := V3(0.3, -0.4, 0.5)
	back := q.Conjugate().Rotate(q.Rotate(v))
	if !vecAlmostEq(back, v, eps) {
		t.Errorf("conj∘rot = %v, want %v", back, v)
	}
}

func TestSlerpEndpointsAndMidpoint(t *testing.T) {
	qa := QuatFromAxisAngle(V3(0, 1, 0), 0)
	qb := QuatFromAxisAngle(V3(0, 1, 0), math.Pi/2)
	if got := qa.Slerp(qb, 0); !almostEq(got.Dot(qa), 1, 1e-9) {
		t.Error("Slerp(0) != qa")
	}
	if got := qa.Slerp(qb, 1); !almostEq(math.Abs(got.Dot(qb)), 1, 1e-9) {
		t.Error("Slerp(1) != qb")
	}
	mid := qa.Slerp(qb, 0.5)
	want := QuatFromAxisAngle(V3(0, 1, 0), math.Pi/4)
	if !almostEq(math.Abs(mid.Dot(want)), 1, 1e-9) {
		t.Errorf("Slerp midpoint = %+v, want 45° about Y", mid)
	}
}

func TestSlerpShortestPath(t *testing.T) {
	qa := QuatFromAxisAngle(V3(0, 0, 1), 0.1)
	qb := QuatFromAxisAngle(V3(0, 0, 1), 0.3)
	// Negate qb: same rotation, opposite sign; slerp must still take
	// the short way.
	qbNeg := Quat{-qb.W, -qb.X, -qb.Y, -qb.Z}
	mid := qa.Slerp(qbNeg, 0.5)
	want := QuatFromAxisAngle(V3(0, 0, 1), 0.2)
	if !almostEq(math.Abs(mid.Dot(want)), 1, 1e-9) {
		t.Errorf("slerp took the long way: %+v", mid)
	}
}

func TestQuatNormalizeZero(t *testing.T) {
	if got := (Quat{}).Normalize(); got != QuatIdentity() {
		t.Errorf("Normalize(0) = %+v, want identity", got)
	}
}
