package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec3Basics(t *testing.T) {
	a, b := V3(1, 2, 3), V3(4, -5, 6)
	if got := a.Add(b); got != V3(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 1*4+2*-5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := V3(1, 0, 0).Cross(V3(0, 1, 0)); got != V3(0, 0, 1) {
		t.Errorf("Cross = %v, want +Z", got)
	}
}

func TestVec3NormalizeZero(t *testing.T) {
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(0) = %v, want zero", got)
	}
}

func TestVec3NormalizeUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := V3(x, y, z)
		if !v.IsFinite() || v.Len() < 1e-6 || v.Len() > 1e12 {
			return true // skip degenerate input
		}
		return almostEq(v.Normalize().Len(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V3(ax, ay, az), V3(bx, by, bz)
		if a.Len() > 1e6 || b.Len() > 1e6 {
			return true
		}
		c := a.Cross(b)
		scale := a.Len() * b.Len()
		tol := 1e-9 * (scale + 1)
		return almostEq(c.Dot(a), 0, tol) && almostEq(c.Dot(b), 0, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V3(1, 2, 3), V3(-4, 5, 0.5)
	if !vecAlmostEq(a.Lerp(b, 0), a, eps) {
		t.Error("Lerp(0) != a")
	}
	if !vecAlmostEq(a.Lerp(b, 1), b, eps) {
		t.Error("Lerp(1) != b")
	}
	if !vecAlmostEq(a.Lerp(b, 0.5), a.Add(b).Scale(0.5), eps) {
		t.Error("Lerp(0.5) != midpoint")
	}
}

func TestMinMaxClamp(t *testing.T) {
	a, b := V3(1, 5, -2), V3(3, 2, 0)
	if got := a.Min(b); got != V3(1, 2, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V3(3, 5, 0) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Clamp(0, 2); got != V3(1, 2, 0) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestVec4Dehomogenize(t *testing.T) {
	if got := V4(2, 4, 6, 2).Dehomogenize(); got != V3(1, 2, 3) {
		t.Errorf("Dehomogenize = %v", got)
	}
	if got := V4(1, 1, 1, 0).Dehomogenize(); got != (Vec3{}) {
		t.Errorf("Dehomogenize(w=0) = %v, want zero", got)
	}
}

func TestVec2Basics(t *testing.T) {
	a, b := V2(3, 4), V2(1, -1)
	if a.Len() != 5 {
		t.Errorf("Len = %v", a.Len())
	}
	if got := a.Add(b); got != V2(4, 3) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Dot(b); got != -1 {
		t.Errorf("Dot = %v", got)
	}
	if !almostEq(a.Normalize().Len(), 1, eps) {
		t.Error("Normalize not unit")
	}
}

func TestIsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V3(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V3(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}
