package geom

import "math"

// AABB is an axis-aligned bounding box. The zero value is the "empty" box
// (Min > Max), ready to be extended with Extend.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns a box that contains nothing; extending it with any
// point produces a degenerate box at that point.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// NewAABB returns the box spanning the two corner points in any order.
func NewAABB(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Extend returns the box grown to include p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Contains reports whether p lies inside (or on the boundary of) b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extents per axis.
func (b AABB) Size() Vec3 {
	if b.IsEmpty() {
		return Vec3{}
	}
	return b.Max.Sub(b.Min)
}

// Diagonal returns the length of the box diagonal.
func (b AABB) Diagonal() float64 { return b.Size().Len() }

// Expand grows the box by margin on every side.
func (b AABB) Expand(margin float64) AABB {
	m := Vec3{margin, margin, margin}
	return AABB{Min: b.Min.Sub(m), Max: b.Max.Add(m)}
}

// Intersects reports whether b and o overlap.
func (b AABB) Intersects(o AABB) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// ClosestPoint returns the point inside b nearest to p.
func (b AABB) ClosestPoint(p Vec3) Vec3 {
	return Vec3{
		clamp(p.X, b.Min.X, b.Max.X),
		clamp(p.Y, b.Min.Y, b.Max.Y),
		clamp(p.Z, b.Min.Z, b.Max.Z),
	}
}

// DistSq returns the squared distance from p to the box (0 when inside).
func (b AABB) DistSq(p Vec3) float64 {
	return b.ClosestPoint(p).DistSq(p)
}

// DistSqBox returns the squared distance between the two boxes (0 when
// they overlap, +Inf when either is empty). For any p ∈ b and q ∈ o,
// p.DistSq(q) >= b.DistSqBox(o) — the conservative lower bound the
// capsule culling grid builds its candidate sets from.
func (b AABB) DistSqBox(o AABB) float64 {
	if b.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	gap := func(aMin, aMax, bMin, bMax float64) float64 {
		if g := bMin - aMax; g > 0 {
			return g
		}
		if g := aMin - bMax; g > 0 {
			return g
		}
		return 0
	}
	gx := gap(b.Min.X, b.Max.X, o.Min.X, o.Max.X)
	gy := gap(b.Min.Y, b.Max.Y, o.Min.Y, o.Max.Y)
	gz := gap(b.Min.Z, b.Max.Z, o.Min.Z, o.Max.Z)
	return gx*gx + gy*gy + gz*gz
}
