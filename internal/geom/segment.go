package geom

import "math"

// SegDistSq returns the squared distance from p to the segment [a, b].
// A degenerate segment (|b-a|² below 1e-18) is treated as the point a.
//
// This is the single point-segment kernel behind every capsule distance
// in the repository — the avatar SDF fold, the culling-grid bounds, and
// the skinning-weight assignment all call it — so its exact operation
// sequence is load-bearing: the temporal-coherence and capsule-pruning
// layers both promise bitwise-identical field values, which holds only
// while every caller computes distances through the same instructions.
func SegDistSq(p, a, b Vec3) float64 {
	ab := b.Sub(a)
	l2 := ab.LenSq()
	if l2 < 1e-18 {
		return p.DistSq(a)
	}
	t := Clamp(p.Sub(a).Dot(ab)/l2, 0, 1)
	return p.DistSq(a.Add(ab.Scale(t)))
}

// SegDist returns the distance from p to the segment [a, b].
func SegDist(p, a, b Vec3) float64 {
	return math.Sqrt(SegDistSq(p, a, b))
}
