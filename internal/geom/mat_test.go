package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mat4AlmostEq(a, b Mat4, tol float64) bool {
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestMat3Identity(t *testing.T) {
	v := V3(1.5, -2, 3)
	if got := Identity3().MulVec(v); got != v {
		t.Errorf("I·v = %v", got)
	}
}

func TestMat3InverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		var m Mat3
		for j := range m {
			m[j] = rng.NormFloat64()
		}
		inv, ok := m.Inverse()
		if !ok {
			continue
		}
		prod := m.Mul(inv)
		id := Identity3()
		for j := range prod {
			if !almostEq(prod[j], id[j], 1e-8) {
				t.Fatalf("m·m⁻¹ [%d] = %v", j, prod[j])
			}
		}
	}
}

func TestMat3Singular(t *testing.T) {
	var zero Mat3
	if _, ok := zero.Inverse(); ok {
		t.Error("zero matrix reported invertible")
	}
}

func TestMat4MulIdentity(t *testing.T) {
	m := Translation(V3(1, 2, 3)).Mul(FromMat3(RotationY(0.7)))
	if got := m.Mul(Identity4()); !mat4AlmostEq(got, m, eps) {
		t.Error("m·I != m")
	}
	if got := Identity4().Mul(m); !mat4AlmostEq(got, m, eps) {
		t.Error("I·m != m")
	}
}

func TestTransformPoint(t *testing.T) {
	m := Translation(V3(10, 0, 0))
	if got := m.TransformPoint(V3(1, 2, 3)); got != V3(11, 2, 3) {
		t.Errorf("translate = %v", got)
	}
	r := FromMat3(RotationZ(math.Pi / 2))
	got := r.TransformPoint(V3(1, 0, 0))
	if !vecAlmostEq(got, V3(0, 1, 0), eps) {
		t.Errorf("rotZ(90°)·x = %v, want +Y", got)
	}
}

func TestInverseRigid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		r := RotationX(rng.Float64() * 6).Mul(RotationY(rng.Float64() * 6)).Mul(RotationZ(rng.Float64() * 6))
		tr := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		m := RigidTransform(r, tr)
		if got := m.Mul(m.InverseRigid()); !mat4AlmostEq(got, Identity4(), 1e-9) {
			t.Fatalf("rigid inverse failed: %v", got)
		}
	}
}

func TestGeneralInverseMatchesRigid(t *testing.T) {
	m := RigidTransform(RotationY(1.1), V3(3, -2, 0.5))
	ginv, ok := m.Inverse()
	if !ok {
		t.Fatal("rigid transform reported singular")
	}
	if !mat4AlmostEq(ginv, m.InverseRigid(), 1e-9) {
		t.Error("general inverse disagrees with rigid inverse")
	}
}

func TestMat4TransposeInvolution(t *testing.T) {
	f := func(vals [16]float64) bool {
		m := Mat4(vals)
		return m.Transpose().Transpose() == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookAtMapsTargetToAxis(t *testing.T) {
	eye, target := V3(0, 0, -5), V3(0, 0, 0)
	m := LookAt(eye, target, V3(0, -1, 0))
	// The eye must map to the camera origin.
	if got := m.TransformPoint(eye); !vecAlmostEq(got, Vec3{}, eps) {
		t.Errorf("eye maps to %v, want origin", got)
	}
	// The target must land on the +Z axis at distance 5.
	got := m.TransformPoint(target)
	if !vecAlmostEq(got, V3(0, 0, 5), eps) {
		t.Errorf("target maps to %v, want (0,0,5)", got)
	}
}

func TestLookAtDegenerateUp(t *testing.T) {
	// Up parallel to the viewing direction must not produce NaNs.
	m := LookAt(V3(0, 0, 0), V3(0, 1, 0), V3(0, 1, 0))
	p := m.TransformPoint(V3(0, 1, 0))
	if !p.IsFinite() {
		t.Fatalf("degenerate LookAt produced %v", p)
	}
	if !almostEq(p.Len(), 1, eps) {
		t.Errorf("target distance = %v, want 1", p.Len())
	}
}

func TestRotationDeterminants(t *testing.T) {
	for _, r := range []Mat3{RotationX(0.3), RotationY(-1.2), RotationZ(2.5)} {
		if !almostEq(r.Det(), 1, eps) {
			t.Errorf("rotation det = %v, want 1", r.Det())
		}
	}
}
