package geom

import (
	"math"
	"math/rand"
	"testing"
)

func testIntrinsics() Intrinsics {
	return IntrinsicsFromFOV(640, 480, math.Pi/3)
}

func TestProjectUnprojectRoundTrip(t *testing.T) {
	in := testIntrinsics()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := V3(rng.NormFloat64(), rng.NormFloat64(), 1+rng.Float64()*5)
		px, depth, ok := in.Project(p)
		if !ok {
			t.Fatalf("point %v in front of camera failed to project", p)
		}
		back := in.Unproject(px, depth)
		if !vecAlmostEq(back, p, 1e-9) {
			t.Fatalf("round trip %v -> %v", p, back)
		}
	}
}

func TestProjectBehindCamera(t *testing.T) {
	in := testIntrinsics()
	if _, _, ok := in.Project(V3(0, 0, -1)); ok {
		t.Error("point behind camera projected")
	}
	if _, _, ok := in.Project(V3(0, 0, 0)); ok {
		t.Error("point at camera center projected")
	}
}

func TestPrincipalPointProjectsToCenter(t *testing.T) {
	in := testIntrinsics()
	px, _, ok := in.Project(V3(0, 0, 2))
	if !ok {
		t.Fatal("projection failed")
	}
	if !almostEq(px.X, 320, eps) || !almostEq(px.Y, 240, eps) {
		t.Errorf("optical axis projects to %v, want image center", px)
	}
}

func TestPixelRayHitsPixel(t *testing.T) {
	in := testIntrinsics()
	px := V2(123, 456)
	r := in.PixelRay(px)
	// Walk along the ray; reprojection must return the same pixel.
	p := r.At(3.7)
	got, _, ok := in.Project(p)
	if !ok {
		t.Fatal("ray point failed to project")
	}
	if !almostEq(got.X, px.X, 1e-6) || !almostEq(got.Y, px.Y, 1e-6) {
		t.Errorf("reprojected to %v, want %v", got, px)
	}
}

func TestCameraWorldRoundTrip(t *testing.T) {
	cam := NewLookAtCamera(testIntrinsics(), V3(2, 1, -4), V3(0, 0, 0), V3(0, -1, 0))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		// Points near the origin are visible from the camera.
		p := V3(rng.NormFloat64()*0.3, rng.NormFloat64()*0.3, rng.NormFloat64()*0.3)
		px, depth, ok := cam.ProjectWorld(p)
		if !ok {
			continue
		}
		back := cam.UnprojectWorld(px, depth)
		if !vecAlmostEq(back, p, 1e-8) {
			t.Fatalf("world round trip %v -> %v", p, back)
		}
	}
}

func TestCameraCenter(t *testing.T) {
	eye := V3(3, -2, 5)
	cam := NewLookAtCamera(testIntrinsics(), eye, V3(0, 0, 0), V3(0, -1, 0))
	if got := cam.Center(); !vecAlmostEq(got, eye, 1e-9) {
		t.Errorf("Center = %v, want %v", got, eye)
	}
}

func TestWorldRayPassesThroughScene(t *testing.T) {
	cam := NewLookAtCamera(testIntrinsics(), V3(0, 0, -5), V3(0, 0, 0), V3(0, -1, 0))
	// Ray through the image center must pass through the origin.
	r := cam.WorldRay(V2(320, 240))
	if !vecAlmostEq(r.O, V3(0, 0, -5), eps) {
		t.Errorf("ray origin = %v", r.O)
	}
	// Closest approach of the ray to origin should be ~0.
	tClosest := r.D.Dot(r.O.Neg())
	d := r.At(tClosest).Len()
	if d > 1e-9 {
		t.Errorf("central ray misses origin by %v", d)
	}
}

func TestAABBBasics(t *testing.T) {
	b := EmptyAABB()
	if !b.IsEmpty() {
		t.Error("EmptyAABB not empty")
	}
	b = b.Extend(V3(1, 2, 3)).Extend(V3(-1, 0, 5))
	if b.IsEmpty() {
		t.Error("extended box still empty")
	}
	if b.Min != V3(-1, 0, 3) || b.Max != V3(1, 2, 5) {
		t.Errorf("box = %+v", b)
	}
	if !b.Contains(V3(0, 1, 4)) {
		t.Error("Contains failed for inner point")
	}
	if b.Contains(V3(0, 1, 6)) {
		t.Error("Contains true for outer point")
	}
	if got := b.Center(); got != V3(0, 1, 4) {
		t.Errorf("Center = %v", got)
	}
	if got := b.Size(); got != V3(2, 2, 2) {
		t.Errorf("Size = %v", got)
	}
}

func TestAABBUnionIntersects(t *testing.T) {
	a := NewAABB(V3(0, 0, 0), V3(1, 1, 1))
	b := NewAABB(V3(2, 2, 2), V3(3, 3, 3))
	if a.Intersects(b) {
		t.Error("disjoint boxes intersect")
	}
	u := a.Union(b)
	if u.Min != V3(0, 0, 0) || u.Max != V3(3, 3, 3) {
		t.Errorf("Union = %+v", u)
	}
	c := NewAABB(V3(0.5, 0.5, 0.5), V3(2.5, 2.5, 2.5))
	if !a.Intersects(c) || !b.Intersects(c) {
		t.Error("overlapping boxes reported disjoint")
	}
	if got := a.Union(EmptyAABB()); got != a {
		t.Errorf("union with empty = %+v", got)
	}
}

func TestAABBDistSq(t *testing.T) {
	b := NewAABB(V3(0, 0, 0), V3(1, 1, 1))
	if got := b.DistSq(V3(0.5, 0.5, 0.5)); got != 0 {
		t.Errorf("inner DistSq = %v", got)
	}
	if got := b.DistSq(V3(2, 0.5, 0.5)); !almostEq(got, 1, eps) {
		t.Errorf("outer DistSq = %v, want 1", got)
	}
}
