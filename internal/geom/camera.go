package geom

import (
	"fmt"
	"math"
)

// Ray is a half-line with origin O and (unit) direction D.
type Ray struct {
	O, D Vec3
}

// At returns the point O + t·D.
func (r Ray) At(t float64) Vec3 { return r.O.Add(r.D.Scale(t)) }

// Intrinsics is a pinhole camera model: focal lengths and principal point
// in pixels over a W×H image, computer-vision convention (x right, y down,
// z forward into the scene).
type Intrinsics struct {
	Width, Height int
	Fx, Fy        float64 // focal length in pixels
	Cx, Cy        float64 // principal point in pixels
}

// IntrinsicsFromFOV builds intrinsics from a horizontal field of view (in
// radians) and image dimensions, with a centered principal point.
func IntrinsicsFromFOV(width, height int, hfov float64) Intrinsics {
	fx := float64(width) / (2 * math.Tan(hfov/2))
	return Intrinsics{
		Width: width, Height: height,
		Fx: fx, Fy: fx,
		Cx: float64(width) / 2, Cy: float64(height) / 2,
	}
}

// Project maps a camera-space point to pixel coordinates and its depth.
// ok is false when the point is behind the camera.
func (in Intrinsics) Project(p Vec3) (px Vec2, depth float64, ok bool) {
	if p.Z <= 1e-9 {
		return Vec2{}, 0, false
	}
	return Vec2{
		X: in.Fx*p.X/p.Z + in.Cx,
		Y: in.Fy*p.Y/p.Z + in.Cy,
	}, p.Z, true
}

// Unproject maps a pixel plus depth back to a camera-space point.
func (in Intrinsics) Unproject(px Vec2, depth float64) Vec3 {
	return Vec3{
		X: (px.X - in.Cx) / in.Fx * depth,
		Y: (px.Y - in.Cy) / in.Fy * depth,
		Z: depth,
	}
}

// PixelRay returns the camera-space ray through the given pixel center.
func (in Intrinsics) PixelRay(px Vec2) Ray {
	d := Vec3{
		X: (px.X - in.Cx) / in.Fx,
		Y: (px.Y - in.Cy) / in.Fy,
		Z: 1,
	}.Normalize()
	return Ray{O: Vec3{}, D: d}
}

// InBounds reports whether the pixel lies inside the image.
func (in Intrinsics) InBounds(px Vec2) bool {
	return px.X >= 0 && px.X < float64(in.Width) && px.Y >= 0 && px.Y < float64(in.Height)
}

func (in Intrinsics) String() string {
	return fmt.Sprintf("intrinsics{%dx%d f=(%.1f,%.1f) c=(%.1f,%.1f)}",
		in.Width, in.Height, in.Fx, in.Fy, in.Cx, in.Cy)
}

// Camera is a posed pinhole camera. WorldToCam maps world coordinates to
// camera coordinates; it must be a rigid transform.
type Camera struct {
	Intr       Intrinsics
	WorldToCam Mat4
}

// NewLookAtCamera places a camera at eye looking toward target.
func NewLookAtCamera(intr Intrinsics, eye, target, up Vec3) Camera {
	return Camera{Intr: intr, WorldToCam: LookAt(eye, target, up)}
}

// CamToWorld returns the inverse pose.
func (c Camera) CamToWorld() Mat4 { return c.WorldToCam.InverseRigid() }

// Center returns the camera center in world coordinates.
func (c Camera) Center() Vec3 { return c.CamToWorld().TranslationPart() }

// ProjectWorld maps a world-space point to pixel coordinates and depth.
func (c Camera) ProjectWorld(p Vec3) (px Vec2, depth float64, ok bool) {
	return c.Intr.Project(c.WorldToCam.TransformPoint(p))
}

// UnprojectWorld maps a pixel plus depth back to a world-space point.
func (c Camera) UnprojectWorld(px Vec2, depth float64) Vec3 {
	return c.CamToWorld().TransformPoint(c.Intr.Unproject(px, depth))
}

// WorldRay returns the world-space viewing ray through the given pixel.
func (c Camera) WorldRay(px Vec2) Ray {
	r := c.Intr.PixelRay(px)
	c2w := c.CamToWorld()
	return Ray{
		O: c2w.TranslationPart(),
		D: c2w.TransformDir(r.D).Normalize(),
	}
}
