// Package geom provides the 3D math substrate used throughout SemHolo:
// vectors, matrices, quaternions, bounding boxes, rays, and pinhole camera
// models. Everything is implemented with float64 for numerical robustness;
// the hot rendering and reconstruction paths operate on values, never
// pointers, so the compiler can keep them in registers.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2D vector, used for image-plane coordinates and texture UVs.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{x, y} }

// Add returns a + b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a - b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns a * s.
func (a Vec2) Scale(s float64) Vec2 { return Vec2{a.X * s, a.Y * s} }

// Dot returns the dot product a · b.
func (a Vec2) Dot(b Vec2) float64 { return a.X*b.X + a.Y*b.Y }

// Len returns the Euclidean length of a.
func (a Vec2) Len() float64 { return math.Hypot(a.X, a.Y) }

// LenSq returns the squared length of a.
func (a Vec2) LenSq() float64 { return a.X*a.X + a.Y*a.Y }

// Dist returns the Euclidean distance between a and b.
func (a Vec2) Dist(b Vec2) float64 { return a.Sub(b).Len() }

// Normalize returns a unit vector in the direction of a, or the zero
// vector when a is (numerically) zero.
func (a Vec2) Normalize() Vec2 {
	l := a.Len()
	if l < 1e-300 {
		return Vec2{}
	}
	return Vec2{a.X / l, a.Y / l}
}

// Lerp linearly interpolates between a (t=0) and b (t=1).
func (a Vec2) Lerp(b Vec2, t float64) Vec2 {
	return Vec2{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

func (a Vec2) String() string { return fmt.Sprintf("(%.4g, %.4g)", a.X, a.Y) }

// Vec3 is a 3D vector: positions, directions, colors, keypoints.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Mul returns the component-wise product of a and b.
func (a Vec3) Mul(b Vec3) Vec3 { return Vec3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Dot returns the dot product a · b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a × b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a Vec3) Len() float64 { return math.Sqrt(a.LenSq()) }

// LenSq returns the squared length of a.
func (a Vec3) LenSq() float64 { return a.X*a.X + a.Y*a.Y + a.Z*a.Z }

// Dist returns the Euclidean distance between a and b.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Len() }

// DistSq returns the squared Euclidean distance between a and b.
func (a Vec3) DistSq(b Vec3) float64 { return a.Sub(b).LenSq() }

// Normalize returns a unit vector in the direction of a, or the zero
// vector when a is (numerically) zero.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l < 1e-300 {
		return Vec3{}
	}
	return Vec3{a.X / l, a.Y / l, a.Z / l}
}

// Neg returns -a.
func (a Vec3) Neg() Vec3 { return Vec3{-a.X, -a.Y, -a.Z} }

// Lerp linearly interpolates between a (t=0) and b (t=1).
func (a Vec3) Lerp(b Vec3, t float64) Vec3 {
	return Vec3{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t, a.Z + (b.Z-a.Z)*t}
}

// Min returns the component-wise minimum of a and b.
func (a Vec3) Min(b Vec3) Vec3 {
	return Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a Vec3) Max(b Vec3) Vec3 {
	return Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// Abs returns the component-wise absolute value of a.
func (a Vec3) Abs() Vec3 {
	return Vec3{math.Abs(a.X), math.Abs(a.Y), math.Abs(a.Z)}
}

// MaxComponent returns the largest component of a.
func (a Vec3) MaxComponent() float64 { return math.Max(a.X, math.Max(a.Y, a.Z)) }

// Clamp returns a with every component clamped to [lo, hi].
func (a Vec3) Clamp(lo, hi float64) Vec3 {
	return Vec3{clamp(a.X, lo, hi), clamp(a.Y, lo, hi), clamp(a.Z, lo, hi)}
}

// IsFinite reports whether all components are finite (no NaN / Inf).
func (a Vec3) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

func (a Vec3) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", a.X, a.Y, a.Z) }

// Vec4 is a homogeneous 4D vector used with Mat4.
type Vec4 struct {
	X, Y, Z, W float64
}

// V4 constructs a Vec4.
func V4(x, y, z, w float64) Vec4 { return Vec4{x, y, z, w} }

// FromVec3 lifts v into homogeneous coordinates with the given w.
func FromVec3(v Vec3, w float64) Vec4 { return Vec4{v.X, v.Y, v.Z, w} }

// Vec3 drops the homogeneous coordinate (no perspective divide).
func (a Vec4) Vec3() Vec3 { return Vec3{a.X, a.Y, a.Z} }

// Dehomogenize performs the perspective divide; it returns the zero
// vector when w is (numerically) zero.
func (a Vec4) Dehomogenize() Vec3 {
	if math.Abs(a.W) < 1e-300 {
		return Vec3{}
	}
	return Vec3{a.X / a.W, a.Y / a.W, a.Z / a.W}
}

// Add returns a + b.
func (a Vec4) Add(b Vec4) Vec4 { return Vec4{a.X + b.X, a.Y + b.Y, a.Z + b.Z, a.W + b.W} }

// Scale returns a * s.
func (a Vec4) Scale(s float64) Vec4 { return Vec4{a.X * s, a.Y * s, a.Z * s, a.W * s} }

// Dot returns the dot product a · b.
func (a Vec4) Dot(b Vec4) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z + a.W*b.W }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp returns v clamped to [lo, hi].
func Clamp(v, lo, hi float64) float64 { return clamp(v, lo, hi) }
