package geom

import "math"

// Quat is a rotation quaternion (W + Xi + Yj + Zk). The identity rotation
// is Quat{W: 1}. Pose parameters in the body model are stored as axis-angle
// vectors and converted through quaternions for interpolation and blending.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds the quaternion rotating by angle radians about
// the given axis (need not be normalized).
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalize()
	s, c := math.Sin(angle/2), math.Cos(angle/2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// QuatFromRotationVector builds the quaternion from an axis-angle rotation
// vector whose direction is the axis and whose magnitude is the angle.
// This is the pose parameterization used by the body model (as in SMPL-X).
func QuatFromRotationVector(rv Vec3) Quat {
	angle := rv.Len()
	if angle < 1e-12 {
		// First-order expansion keeps the map smooth near zero.
		return Quat{W: 1, X: rv.X / 2, Y: rv.Y / 2, Z: rv.Z / 2}.Normalize()
	}
	return QuatFromAxisAngle(rv, angle)
}

// RotationVector converts q back to an axis-angle rotation vector.
func (q Quat) RotationVector() Vec3 {
	q = q.Normalize()
	if q.W < 0 { // canonical hemisphere: angle in [0, π]
		q = Quat{-q.W, -q.X, -q.Y, -q.Z}
	}
	s := math.Sqrt(q.X*q.X + q.Y*q.Y + q.Z*q.Z)
	if s < 1e-12 {
		return Vec3{2 * q.X, 2 * q.Y, 2 * q.Z}
	}
	angle := 2 * math.Atan2(s, q.W)
	return Vec3{q.X / s, q.Y / s, q.Z / s}.Scale(angle)
}

// Mul returns the Hamilton product q × r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conjugate returns the conjugate (inverse for unit quaternions).
func (q Quat) Conjugate() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion norm.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit norm; identity if q is ~zero.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n < 1e-300 {
		return QuatIdentity()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation q to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q⁻¹, expanded to avoid quaternion multiplies.
	u := Vec3{q.X, q.Y, q.Z}
	s := q.W
	return u.Scale(2 * u.Dot(v)).
		Add(v.Scale(s*s - u.Dot(u))).
		Add(u.Cross(v).Scale(2 * s))
}

// Mat3 converts the (unit) quaternion to a rotation matrix.
func (q Quat) Mat3() Mat3 {
	q = q.Normalize()
	x, y, z, w := q.X, q.Y, q.Z, q.W
	return Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}

// Dot returns the 4D dot product of q and r.
func (q Quat) Dot(r Quat) float64 {
	return q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
}

// Slerp spherically interpolates from q (t=0) to r (t=1), taking the
// shortest arc.
func (q Quat) Slerp(r Quat, t float64) Quat {
	q, r = q.Normalize(), r.Normalize()
	d := q.Dot(r)
	if d < 0 { // shortest path
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		d = -d
	}
	if d > 0.9995 {
		// Nearly parallel: nlerp is numerically safer.
		return Quat{
			q.W + (r.W-q.W)*t,
			q.X + (r.X-q.X)*t,
			q.Y + (r.Y-q.Y)*t,
			q.Z + (r.Z-q.Z)*t,
		}.Normalize()
	}
	theta := math.Acos(clamp(d, -1, 1))
	sin := math.Sin(theta)
	wq := math.Sin((1-t)*theta) / sin
	wr := math.Sin(t*theta) / sin
	return Quat{
		q.W*wq + r.W*wr,
		q.X*wq + r.X*wr,
		q.Y*wq + r.Y*wr,
		q.Z*wq + r.Z*wr,
	}.Normalize()
}
