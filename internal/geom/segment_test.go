package geom

// Tests pinning the point-segment kernel: SegDist must reproduce —
// bitwise — the operation sequence of the per-package copies it replaced
// (the temporal-coherence and capsule-pruning layers promise bitwise
// field identity, which holds only while every caller computes distances
// identically), and DistSqBox must be a true lower bound on point-pair
// distances between boxes.

import (
	"math"
	"math/rand"
	"testing"
)

// legacySegDist is the implementation previously duplicated in
// internal/avatar (segDist) and internal/body (pointSegmentDist),
// preserved verbatim as the bitwise reference.
func legacySegDist(p, a, b Vec3) float64 {
	ab := b.Sub(a)
	l2 := ab.LenSq()
	if l2 < 1e-18 {
		return p.Dist(a)
	}
	t := Clamp(p.Sub(a).Dot(ab)/l2, 0, 1)
	return p.Dist(a.Add(ab.Scale(t)))
}

func randVec(rng *rand.Rand, scale float64) Vec3 {
	return Vec3{
		X: (rng.Float64()*2 - 1) * scale,
		Y: (rng.Float64()*2 - 1) * scale,
		Z: (rng.Float64()*2 - 1) * scale,
	}
}

func TestSegDistMatchesLegacyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		a := randVec(rng, 2)
		b := randVec(rng, 2)
		if trial%7 == 0 {
			b = a // exercise the degenerate-segment branch
		}
		p := randVec(rng, 3)
		if trial%5 == 0 {
			p = a.Lerp(b, rng.Float64()) // on-segment points (distance ~0)
		}
		got := SegDist(p, a, b)
		want := legacySegDist(p, a, b)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: SegDist(%v, %v, %v) = %x, legacy = %x",
				trial, p, a, b, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestDistSqBoxLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		b1 := NewAABB(randVec(rng, 2), randVec(rng, 2))
		b2 := NewAABB(randVec(rng, 2), randVec(rng, 2))
		lb := b1.DistSqBox(b2)
		if lb != b2.DistSqBox(b1) {
			t.Fatalf("trial %d: DistSqBox not symmetric", trial)
		}
		// Random point pairs inside the boxes can never be closer than
		// the box-box bound.
		for s := 0; s < 20; s++ {
			p := b1.Min.Add(Vec3{
				X: rng.Float64() * (b1.Max.X - b1.Min.X),
				Y: rng.Float64() * (b1.Max.Y - b1.Min.Y),
				Z: rng.Float64() * (b1.Max.Z - b1.Min.Z),
			})
			q := b2.Min.Add(Vec3{
				X: rng.Float64() * (b2.Max.X - b2.Min.X),
				Y: rng.Float64() * (b2.Max.Y - b2.Min.Y),
				Z: rng.Float64() * (b2.Max.Z - b2.Min.Z),
			})
			if p.DistSq(q) < lb {
				t.Fatalf("trial %d: point distance %g below box bound %g", trial, p.DistSq(q), lb)
			}
		}
	}
	if got := EmptyAABB().DistSqBox(NewAABB(Vec3{}, Vec3{1, 1, 1})); !math.IsInf(got, 1) {
		t.Fatalf("empty box distance = %g, want +Inf", got)
	}
}

// BenchmarkSegDist guards the dedup: the shared kernel must cost the
// same as the per-package copies it replaced.
func BenchmarkSegDist(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Vec3, 1024)
	for i := range pts {
		pts[i] = randVec(rng, 2)
	}
	a, c := Vec3{-0.3, 0.1, 0}, Vec3{0.4, 0.9, 0.2}
	b.Run("shared", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += SegDist(pts[i&1023], a, c)
		}
		_ = sink
	})
	b.Run("legacy", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += legacySegDist(pts[i&1023], a, c)
		}
		_ = sink
	})
}
