package geom

import "math"

// Mat3 is a row-major 3×3 matrix. Index as M[row*3+col].
type Mat3 [9]float64

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// MulVec applies m to v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Mul returns the matrix product m × o.
func (m Mat3) Mul(o Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m[i*3+k] * o[k*3+j]
			}
			r[i*3+j] = s
		}
	}
	return r
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Inverse returns m⁻¹ and whether the matrix was invertible.
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-300 {
		return Identity3(), false
	}
	inv := 1 / d
	return Mat3{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}, true
}

// Mat4 is a row-major 4×4 matrix. Index as M[row*4+col].
type Mat4 [16]float64

// Identity4 returns the 4×4 identity matrix.
func Identity4() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Translation returns the matrix translating by t.
func Translation(t Vec3) Mat4 {
	return Mat4{
		1, 0, 0, t.X,
		0, 1, 0, t.Y,
		0, 0, 1, t.Z,
		0, 0, 0, 1,
	}
}

// Scaling returns the matrix scaling by s per axis.
func Scaling(s Vec3) Mat4 {
	return Mat4{
		s.X, 0, 0, 0,
		0, s.Y, 0, 0,
		0, 0, s.Z, 0,
		0, 0, 0, 1,
	}
}

// FromMat3 embeds a rotation/linear part into a 4×4 transform with zero
// translation.
func FromMat3(r Mat3) Mat4 {
	return Mat4{
		r[0], r[1], r[2], 0,
		r[3], r[4], r[5], 0,
		r[6], r[7], r[8], 0,
		0, 0, 0, 1,
	}
}

// RigidTransform builds the 4×4 matrix applying rotation r then
// translation t (i.e. p' = R p + t).
func RigidTransform(r Mat3, t Vec3) Mat4 {
	return Mat4{
		r[0], r[1], r[2], t.X,
		r[3], r[4], r[5], t.Y,
		r[6], r[7], r[8], t.Z,
		0, 0, 0, 1,
	}
}

// Mat3 extracts the upper-left 3×3 linear part.
func (m Mat4) Mat3() Mat3 {
	return Mat3{
		m[0], m[1], m[2],
		m[4], m[5], m[6],
		m[8], m[9], m[10],
	}
}

// TranslationPart extracts the translation column.
func (m Mat4) TranslationPart() Vec3 { return Vec3{m[3], m[7], m[11]} }

// Mul returns the matrix product m × o.
func (m Mat4) Mul(o Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * o[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// MulVec applies m to the homogeneous vector v.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// TransformPoint applies m to a point (w=1) and dehomogenizes.
func (m Mat4) TransformPoint(p Vec3) Vec3 {
	return m.MulVec(FromVec3(p, 1)).Dehomogenize()
}

// TransformDir applies only the linear part of m to a direction (w=0).
func (m Mat4) TransformDir(d Vec3) Vec3 {
	return m.Mat3().MulVec(d)
}

// Transpose returns mᵀ.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[j*4+i] = m[i*4+j]
		}
	}
	return r
}

// InverseRigid inverts a rigid transform (rotation + translation) cheaply
// and exactly: [R t]⁻¹ = [Rᵀ -Rᵀt].
func (m Mat4) InverseRigid() Mat4 {
	rt := m.Mat3().Transpose()
	t := rt.MulVec(m.TranslationPart()).Neg()
	return RigidTransform(rt, t)
}

// Inverse returns the general inverse via Gauss-Jordan elimination and
// whether the matrix was invertible.
func (m Mat4) Inverse() (Mat4, bool) {
	// Augmented [m | I], reduce in place.
	var a [4][8]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a[i][j] = m[i*4+j]
		}
		a[i][4+i] = 1
	}
	for col := 0; col < 4; col++ {
		// Partial pivoting.
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return Identity4(), false
		}
		a[col], a[pivot] = a[pivot], a[col]
		p := a[col][col]
		for j := 0; j < 8; j++ {
			a[col][j] /= p
		}
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			for j := 0; j < 8; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	var inv Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			inv[i*4+j] = a[i][4+j]
		}
	}
	return inv, true
}

// RotationX returns the rotation matrix about the X axis by angle radians.
func RotationX(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{
		1, 0, 0,
		0, c, -s,
		0, s, c,
	}
}

// RotationY returns the rotation matrix about the Y axis by angle radians.
func RotationY(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{
		c, 0, s,
		0, 1, 0,
		-s, 0, c,
	}
}

// RotationZ returns the rotation matrix about the Z axis by angle radians.
func RotationZ(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{
		c, -s, 0,
		s, c, 0,
		0, 0, 1,
	}
}

// LookAt builds a world→camera rigid transform for a camera at eye,
// looking toward target, with the given up hint. The camera looks down
// its +Z axis (computer-vision convention: z forward, x right, y down).
func LookAt(eye, target, up Vec3) Mat4 {
	fwd := target.Sub(eye).Normalize()
	right := fwd.Cross(up).Normalize()
	if right.LenSq() < 1e-12 {
		// Degenerate up; pick an arbitrary perpendicular.
		right = fwd.Cross(V3(1, 0, 0)).Normalize()
		if right.LenSq() < 1e-12 {
			right = fwd.Cross(V3(0, 0, 1)).Normalize()
		}
	}
	down := fwd.Cross(right).Normalize()
	r := Mat3{
		right.X, right.Y, right.Z,
		down.X, down.Y, down.Z,
		fwd.X, fwd.Y, fwd.Z,
	}
	t := r.MulVec(eye).Neg()
	return RigidTransform(r, t)
}
