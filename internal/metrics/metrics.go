// Package metrics implements the objective quality measures used to
// regenerate the paper's figures: PSNR and SSIM over rendered views
// (Figure 3's texture comparison), chamfer distance / Hausdorff distance
// / F-score over geometry (Figure 2's resolution sweep), and a composite
// QoE score combining quality with delivery latency.
package metrics

import (
	"math"
	"sort"

	"semholo/internal/geom"
	"semholo/internal/mesh"
	"semholo/internal/pointcloud"
)

// MSE returns the mean squared error between two equal-length color
// buffers (averaged over all channels).
func MSE(a, b []pointcloud.Color) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		dr := a[i].R - b[i].R
		dg := a[i].G - b[i].G
		db := a[i].B - b[i].B
		s += dr*dr + dg*dg + db*db
	}
	return s / float64(3*len(a))
}

// PSNR returns the peak signal-to-noise ratio in dB for colors in [0,1].
// Identical buffers return +Inf.
func PSNR(a, b []pointcloud.Color) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(1/mse)
}

func luminance(c pointcloud.Color) float64 {
	return 0.299*c.R + 0.587*c.G + 0.114*c.B
}

// SSIM computes the mean structural similarity index over 8×8 luminance
// windows of two images with the given width. Constants follow the
// standard SSIM formulation for dynamic range 1.
func SSIM(a, b []pointcloud.Color, width int) float64 {
	if len(a) != len(b) || width <= 0 || len(a)%width != 0 {
		return math.NaN()
	}
	height := len(a) / width
	const win = 8
	const c1 = 0.01 * 0.01
	const c2 = 0.03 * 0.03
	var total float64
	var windows int
	for wy := 0; wy+win <= height; wy += win {
		for wx := 0; wx+win <= width; wx += win {
			var ma, mb float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					i := (wy+y)*width + wx + x
					ma += luminance(a[i])
					mb += luminance(b[i])
				}
			}
			n := float64(win * win)
			ma /= n
			mb /= n
			var va, vb, cov float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					i := (wy+y)*width + wx + x
					da := luminance(a[i]) - ma
					db := luminance(b[i]) - mb
					va += da * da
					vb += db * db
					cov += da * db
				}
			}
			va /= n - 1
			vb /= n - 1
			cov /= n - 1
			ssim := ((2*ma*mb + c1) * (2*cov + c2)) /
				((ma*ma + mb*mb + c1) * (va + vb + c2))
			total += ssim
			windows++
		}
	}
	if windows == 0 {
		return math.NaN()
	}
	return total / float64(windows)
}

// GeometryReport summarizes point-set distance metrics.
type GeometryReport struct {
	// Chamfer is the symmetric mean nearest-neighbor distance.
	Chamfer float64
	// Hausdorff is the maximum nearest-neighbor distance (both ways).
	Hausdorff float64
	// Hausdorff95 is the robust 95th-percentile variant.
	Hausdorff95 float64
	// FScore is the harmonic mean of precision/recall at the threshold
	// passed to CompareClouds.
	FScore float64
}

// CompareClouds computes geometry metrics between a reconstruction and a
// reference point set. tau is the F-score distance threshold.
func CompareClouds(recon, ref []geom.Vec3, tau float64) GeometryReport {
	if len(recon) == 0 || len(ref) == 0 {
		return GeometryReport{
			Chamfer:     math.NaN(),
			Hausdorff:   math.NaN(),
			Hausdorff95: math.NaN(),
		}
	}
	refTree := pointcloud.NewKDTree(ref)
	reconTree := pointcloud.NewKDTree(recon)

	dists := func(from []geom.Vec3, tree *pointcloud.KDTree) []float64 {
		out := make([]float64, len(from))
		for i, p := range from {
			nb, _ := tree.Nearest(p)
			out[i] = math.Sqrt(nb.DistSq)
		}
		return out
	}
	dRecon := dists(recon, refTree) // precision distances
	dRef := dists(ref, reconTree)   // recall distances

	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	pct := func(xs []float64, q float64) float64 {
		c := append([]float64(nil), xs...)
		sort.Float64s(c)
		i := int(q * float64(len(c)-1))
		return c[i]
	}
	frac := func(xs []float64) float64 {
		n := 0
		for _, x := range xs {
			if x <= tau {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}

	rep := GeometryReport{
		Chamfer:   (mean(dRecon) + mean(dRef)) / 2,
		Hausdorff: math.Max(maxOf(dRecon), maxOf(dRef)),
	}
	rep.Hausdorff95 = math.Max(pct(dRecon, 0.95), pct(dRef, 0.95))
	if tau > 0 {
		precision, recall := frac(dRecon), frac(dRef)
		if precision+recall > 0 {
			rep.FScore = 2 * precision * recall / (precision + recall)
		}
	}
	return rep
}

// CompareMeshes samples both meshes uniformly (n points each) and
// compares the samples — the standard protocol for mesh-to-mesh quality
// (Figure 2's resolution sweep).
func CompareMeshes(recon, ref *mesh.Mesh, n int, tau float64) GeometryReport {
	return CompareClouds(recon.SamplePoints(n), ref.SamplePoints(n), tau)
}

// QoEWeights parameterizes the composite experience score.
type QoEWeights struct {
	// LatencyBudget is the end-to-end latency (seconds) considered
	// acceptable; the paper cites <100 ms for interactivity (§1).
	LatencyBudget float64
	// MinFPS is the frame rate considered fluid (30 in §4.2).
	MinFPS float64
}

// DefaultQoE returns the paper's interactivity targets.
func DefaultQoE() QoEWeights { return QoEWeights{LatencyBudget: 0.100, MinFPS: 30} }

// Score combines visual quality (SSIM-like, in [0,1]), end-to-end
// latency, and delivered frame rate into a [0,1] composite: quality
// scaled by soft penalties for blowing the latency budget or dropping
// below the fluid frame rate.
func (w QoEWeights) Score(quality, latencySec, fps float64) float64 {
	q := geom.Clamp(quality, 0, 1)
	latPenalty := 1.0
	if latencySec > w.LatencyBudget {
		latPenalty = w.LatencyBudget / latencySec
	}
	fpsPenalty := 1.0
	if fps < w.MinFPS {
		fpsPenalty = fps / w.MinFPS
	}
	return q * latPenalty * fpsPenalty
}
