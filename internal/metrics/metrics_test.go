package metrics

import (
	"math"
	"math/rand"
	"testing"

	"semholo/internal/geom"
	"semholo/internal/mesh"
	"semholo/internal/pointcloud"
)

func solidImage(n int, c pointcloud.Color) []pointcloud.Color {
	img := make([]pointcloud.Color, n)
	for i := range img {
		img[i] = c
	}
	return img
}

func TestPSNRIdentical(t *testing.T) {
	a := solidImage(64*64, pointcloud.Color{R: 0.5, G: 0.5, B: 0.5})
	if p := PSNR(a, a); !math.IsInf(p, 1) {
		t.Errorf("identical PSNR = %v", p)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := solidImage(100, pointcloud.Color{})
	b := solidImage(100, pointcloud.Color{R: 0.1, G: 0.1, B: 0.1})
	// MSE = 0.01 → PSNR = 20 dB.
	if p := PSNR(a, b); math.Abs(p-20) > 1e-9 {
		t.Errorf("PSNR = %v, want 20", p)
	}
}

func TestPSNRMonotonic(t *testing.T) {
	a := solidImage(100, pointcloud.Color{})
	small := solidImage(100, pointcloud.Color{R: 0.05})
	big := solidImage(100, pointcloud.Color{R: 0.3})
	if PSNR(a, small) <= PSNR(a, big) {
		t.Error("PSNR not monotonic in error")
	}
}

func TestMSEMismatchedSizes(t *testing.T) {
	if !math.IsNaN(MSE(solidImage(4, pointcloud.Color{}), solidImage(5, pointcloud.Color{}))) {
		t.Error("size mismatch not NaN")
	}
}

func TestSSIMIdenticalAndNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := 64
	img := make([]pointcloud.Color, w*w)
	for i := range img {
		v := rng.Float64()
		img[i] = pointcloud.Color{R: v, G: v, B: v}
	}
	if s := SSIM(img, img, w); math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM(x,x) = %v", s)
	}
	noisy := append([]pointcloud.Color(nil), img...)
	for i := range noisy {
		d := rng.NormFloat64() * 0.2
		noisy[i] = pointcloud.Color{
			R: geom.Clamp(noisy[i].R+d, 0, 1),
			G: geom.Clamp(noisy[i].G+d, 0, 1),
			B: geom.Clamp(noisy[i].B+d, 0, 1),
		}
	}
	s := SSIM(img, noisy, w)
	if s >= 0.99 || s < 0 {
		t.Errorf("SSIM of noisy image = %v", s)
	}
}

func TestChamferZeroForIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Vec3, 200)
	for i := range pts {
		pts[i] = geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	rep := CompareClouds(pts, pts, 0.01)
	if rep.Chamfer != 0 || rep.Hausdorff != 0 {
		t.Errorf("identical clouds: chamfer %v hausdorff %v", rep.Chamfer, rep.Hausdorff)
	}
	if rep.FScore != 1 {
		t.Errorf("identical clouds F-score %v", rep.FScore)
	}
}

func TestChamferKnownOffset(t *testing.T) {
	a := []geom.Vec3{{X: 0}, {X: 1}, {X: 2}}
	b := []geom.Vec3{{X: 0.1}, {X: 1.1}, {X: 2.1}}
	rep := CompareClouds(a, b, 0.2)
	if math.Abs(rep.Chamfer-0.1) > 1e-9 {
		t.Errorf("chamfer = %v, want 0.1", rep.Chamfer)
	}
	if math.Abs(rep.Hausdorff-0.1) > 1e-9 {
		t.Errorf("hausdorff = %v, want 0.1", rep.Hausdorff)
	}
	if rep.FScore != 1 {
		t.Errorf("F-score = %v at generous threshold", rep.FScore)
	}
}

func TestHausdorffCatchesOutlier(t *testing.T) {
	base := make([]geom.Vec3, 100)
	for i := range base {
		base[i] = geom.V3(float64(i)*0.01, 0, 0)
	}
	withOutlier := append(append([]geom.Vec3(nil), base...), geom.V3(0, 5, 0))
	rep := CompareClouds(withOutlier, base, 0.05)
	if rep.Hausdorff < 4.9 {
		t.Errorf("hausdorff %v missed the outlier", rep.Hausdorff)
	}
	// The robust variant must ignore it.
	if rep.Hausdorff95 > 0.1 {
		t.Errorf("hausdorff95 %v dominated by single outlier", rep.Hausdorff95)
	}
	// Chamfer barely moves.
	if rep.Chamfer > 0.1 {
		t.Errorf("chamfer %v oversensitive to one outlier", rep.Chamfer)
	}
}

func TestCompareMeshesResolutionOrdering(t *testing.T) {
	// A finer sphere should match the reference sphere better than a
	// coarse one — the property behind Figure 2.
	ref := mesh.UnitSphere(4)
	coarse := CompareMeshes(mesh.UnitSphere(1), ref, 2000, 0.01)
	fine := CompareMeshes(mesh.UnitSphere(3), ref, 2000, 0.01)
	if fine.Chamfer >= coarse.Chamfer {
		t.Errorf("chamfer fine %v !< coarse %v", fine.Chamfer, coarse.Chamfer)
	}
	if fine.FScore <= coarse.FScore {
		t.Errorf("fscore fine %v !> coarse %v", fine.FScore, coarse.FScore)
	}
}

func TestCompareCloudsEmpty(t *testing.T) {
	rep := CompareClouds(nil, []geom.Vec3{{}}, 0.1)
	if !math.IsNaN(rep.Chamfer) {
		t.Error("empty cloud should give NaN")
	}
}

func TestQoEScore(t *testing.T) {
	w := DefaultQoE()
	// Perfect delivery: score = quality.
	if s := w.Score(0.9, 0.05, 60); math.Abs(s-0.9) > 1e-9 {
		t.Errorf("unpenalized score %v", s)
	}
	// Latency blowout halves at 200 ms.
	if s := w.Score(1.0, 0.2, 60); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("latency-penalized score %v", s)
	}
	// Low FPS penalized: the paper's keypoint PoC at <1 FPS must score
	// terribly despite decent geometry (§4.2 discussion).
	if s := w.Score(0.8, 0.05, 0.5); s > 0.05 {
		t.Errorf("sub-FPS score %v not punished", s)
	}
	// Clamping.
	if s := w.Score(1.5, 0.01, 60); s > 1 {
		t.Errorf("score %v exceeds 1", s)
	}
}
