package metrics

import "testing"

func TestReconCountersSnapshot(t *testing.T) {
	var c ReconCounters
	c.AddMeshHit()
	c.AddMeshHit()
	c.AddMeshMiss()
	c.AddMeshEviction()
	c.AddFrame(true, 90, 10)
	c.AddFrame(false, 0, 200)

	s := c.Snapshot()
	if s.MeshHits != 2 || s.MeshMisses != 1 || s.MeshEvictions != 1 {
		t.Fatalf("mesh counters %+v", s)
	}
	if s.WarmFrames != 1 || s.ColdFrames != 1 {
		t.Fatalf("frame counters %+v", s)
	}
	if s.SamplesReused != 90 || s.SamplesEvaluated != 210 {
		t.Fatalf("sample counters %+v", s)
	}
	if hr := s.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate %v", hr)
	}
	if rr := s.ReuseRate(); rr != 0.3 {
		t.Errorf("reuse rate %v", rr)
	}
}

// TestReconCountersNilSafe: every method must be a no-op on nil, so call
// sites can hook counters up optionally without guards.
func TestReconCountersNilSafe(t *testing.T) {
	var c *ReconCounters
	c.AddMeshHit()
	c.AddMeshMiss()
	c.AddMeshEviction()
	c.AddFrame(true, 1, 2)
	if s := c.Snapshot(); s != (ReconStats{}) {
		t.Fatalf("nil snapshot %+v", s)
	}
	if s := c.Snapshot(); s.HitRate() != 0 || s.ReuseRate() != 0 {
		t.Fatal("nil rates nonzero")
	}
}
