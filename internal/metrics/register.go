package metrics

import "semholo/internal/obs"

// Registerer is the uniform hookup every counter bundle in this package
// implements: wire yourself into the shared observability registry as
// pull-backed series. ReconCounters and FieldCounters both satisfy it,
// as does anything else with the same Register(reg) shape — the
// convention every cmd follows so one /metrics scrape exposes the whole
// process.
type Registerer interface {
	Register(reg *obs.Registry)
}

// RegisterAll wires every bundle into reg in order. Nil bundles and a
// nil registry are no-ops, matching the nil-safety of the underlying
// Register methods, so call sites can pass optional counters without
// guards.
func RegisterAll(reg *obs.Registry, bundles ...Registerer) {
	if reg == nil {
		return
	}
	for _, b := range bundles {
		if b != nil {
			b.Register(reg)
		}
	}
}
