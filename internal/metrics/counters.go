package metrics

// Counters for the temporal-coherence reconstruction cache (mesh LRU
// hits, warm vs cold frames, per-sample SDF reuse). One ReconCounters
// instance may be shared by several reconstructors — e.g. every receiver
// of a cloud session — so all fields are atomic.

import (
	"sync/atomic"

	"semholo/internal/obs"
)

// ReconCounters aggregates reconstruction-cache telemetry. The zero
// value is ready to use; methods on a nil receiver are no-ops, so call
// sites never need to guard the optional counter hookup.
type ReconCounters struct {
	meshHits        atomic.Uint64
	meshMisses      atomic.Uint64
	meshEvictions   atomic.Uint64
	crossTenantHits atomic.Uint64
	warmFrames      atomic.Uint64
	coldFrames      atomic.Uint64
	reused          atomic.Uint64
	evaluated       atomic.Uint64
}

// AddMeshHit records a pose-keyed mesh cache hit.
func (c *ReconCounters) AddMeshHit() {
	if c != nil {
		c.meshHits.Add(1)
		obs.Flight.Record(obs.EvCacheHit, "meshcache", 0, 0, 0)
	}
}

// AddMeshMiss records a pose-keyed mesh cache miss.
func (c *ReconCounters) AddMeshMiss() {
	if c != nil {
		c.meshMisses.Add(1)
		obs.Flight.Record(obs.EvCacheMiss, "meshcache", 0, 0, 0)
	}
}

// AddCrossTenantHit records a mesh cache hit served to a reconstructor
// other than the one that produced the entry — two streams sharing one
// pose-space entry in a multi-tenant decode service.
func (c *ReconCounters) AddCrossTenantHit() {
	if c != nil {
		c.crossTenantHits.Add(1)
	}
}

// AddMeshEviction records an LRU eviction.
func (c *ReconCounters) AddMeshEviction() {
	if c != nil {
		c.meshEvictions.Add(1)
	}
}

// AddFrame records one reconstructed frame and its per-sample SDF
// evaluation split: reused samples were copied from the previous frame's
// lattice cache, evaluated samples ran the full smooth-union.
func (c *ReconCounters) AddFrame(warm bool, reused, evaluated int) {
	if c == nil {
		return
	}
	if warm {
		c.warmFrames.Add(1)
	} else {
		c.coldFrames.Add(1)
	}
	c.reused.Add(uint64(reused))
	c.evaluated.Add(uint64(evaluated))
}

// Snapshot returns a consistent-enough copy for reporting (individual
// loads are atomic; the set is not a transaction, which reporting does
// not need).
func (c *ReconCounters) Snapshot() ReconStats {
	if c == nil {
		return ReconStats{}
	}
	return ReconStats{
		MeshHits:         c.meshHits.Load(),
		MeshMisses:       c.meshMisses.Load(),
		MeshEvictions:    c.meshEvictions.Load(),
		CrossTenantHits:  c.crossTenantHits.Load(),
		WarmFrames:       c.warmFrames.Load(),
		ColdFrames:       c.coldFrames.Load(),
		SamplesReused:    c.reused.Load(),
		SamplesEvaluated: c.evaluated.Load(),
	}
}

// Register wires the counters into the shared observability registry as
// pull-backed series, so one /metrics scrape reports reconstruction
// cache behavior alongside the rest of the pipeline. Safe on nil (no-op)
// to match the rest of the ReconCounters API.
func (c *ReconCounters) Register(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	ops := reg.Counter("semholo_recon_mesh_cache_ops_total",
		"Pose-keyed mesh LRU operations.", "op")
	ops.Func(func() float64 { return float64(c.meshHits.Load()) }, "hit")
	ops.Func(func() float64 { return float64(c.meshMisses.Load()) }, "miss")
	ops.Func(func() float64 { return float64(c.meshEvictions.Load()) }, "eviction")
	reg.Counter("semholo_meshcache_crosstenant_hits_total",
		"Mesh LRU hits served to a tenant other than the entry's producer.").
		Func(func() float64 { return float64(c.crossTenantHits.Load()) })
	frames := reg.Counter("semholo_recon_frames_total",
		"Reconstructed frames by extraction mode.", "kind")
	frames.Func(func() float64 { return float64(c.warmFrames.Load()) }, "warm")
	frames.Func(func() float64 { return float64(c.coldFrames.Load()) }, "cold")
	samples := reg.Counter("semholo_recon_samples_total",
		"SDF lattice samples by source.", "kind")
	samples.Func(func() float64 { return float64(c.reused.Load()) }, "reused")
	samples.Func(func() float64 { return float64(c.evaluated.Load()) }, "evaluated")
	reg.GaugeFunc("semholo_recon_mesh_cache_hit_rate",
		"Fraction of Reconstruct calls served from the mesh LRU.",
		func() float64 { return c.Snapshot().HitRate() })
}

// ReconStats is a point-in-time copy of ReconCounters.
type ReconStats struct {
	MeshHits         uint64
	MeshMisses       uint64
	MeshEvictions    uint64
	CrossTenantHits  uint64
	WarmFrames       uint64
	ColdFrames       uint64
	SamplesReused    uint64
	SamplesEvaluated uint64
}

// HitRate is the fraction of Reconstruct calls served from the mesh LRU.
func (s ReconStats) HitRate() float64 {
	total := s.MeshHits + s.MeshMisses
	if total == 0 {
		return 0
	}
	return float64(s.MeshHits) / float64(total)
}

// ReuseRate is the fraction of lattice samples satisfied by the
// cross-frame cache instead of a fresh SDF evaluation.
func (s ReconStats) ReuseRate() float64 {
	total := s.SamplesReused + s.SamplesEvaluated
	if total == 0 {
		return 0
	}
	return float64(s.SamplesReused) / float64(total)
}
