package metrics

// Counters for the SDF field acceleration layer (capsule culling grid +
// batched evaluation): how many lattice samples were evaluated, how many
// exact capsule distance tests they cost, and how selective the per-bin
// candidate lists were. One FieldCounters instance may be shared by many
// reconstructors, so all fields are atomic.

import (
	"sync/atomic"

	"semholo/internal/obs"
)

// FieldCounters aggregates field-evaluation telemetry. The zero value is
// ready to use; methods on a nil receiver are no-ops, so the hot path
// never guards the optional hookup — and a nil FieldCounters costs the
// field evaluator nothing, because the evaluator aggregates locally and
// flushes per batch, not per sample.
type FieldCounters struct {
	samples       atomic.Uint64 // field evaluations (grid-pruned or full fold)
	capsuleTests  atomic.Uint64 // exact point-segment distance tests those cost
	binsBuilt     atomic.Uint64 // culling-grid bins lazily constructed
	binCandidates atomic.Uint64 // candidate capsules across all built bins
}

// AddSamples records a flushed batch of field evaluations and the exact
// capsule distance tests they performed.
func (c *FieldCounters) AddSamples(samples, tests uint64) {
	if c != nil {
		c.samples.Add(samples)
		c.capsuleTests.Add(tests)
	}
}

// AddBin records one lazily built culling-grid bin and the size of its
// candidate list.
func (c *FieldCounters) AddBin(candidates int) {
	if c != nil {
		c.binsBuilt.Add(1)
		c.binCandidates.Add(uint64(candidates))
	}
}

// Snapshot returns a point-in-time copy for reporting.
func (c *FieldCounters) Snapshot() FieldStats {
	if c == nil {
		return FieldStats{}
	}
	return FieldStats{
		Samples:       c.samples.Load(),
		CapsuleTests:  c.capsuleTests.Load(),
		BinsBuilt:     c.binsBuilt.Load(),
		BinCandidates: c.binCandidates.Load(),
	}
}

// Register wires the counters into the shared observability registry as
// pull-backed series. Safe on nil (no-op) to match the rest of the API.
func (c *FieldCounters) Register(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.Counter("semholo_field_capsule_tests_total",
		"Exact point-segment capsule distance tests across all field samples.").
		Func(func() float64 { return float64(c.capsuleTests.Load()) })
	reg.Counter("semholo_field_samples_total",
		"SDF field evaluations (fresh samples, pruned or full).").
		Func(func() float64 { return float64(c.samples.Load()) })
	reg.Counter("semholo_field_bins_built_total",
		"Capsule culling-grid bins lazily constructed.").
		Func(func() float64 { return float64(c.binsBuilt.Load()) })
	reg.GaugeFunc("semholo_field_bin_candidates",
		"Mean candidate capsules per culling-grid bin.",
		func() float64 { return c.Snapshot().CandidatesPerBin() })
	reg.GaugeFunc("semholo_field_capsule_tests_per_sample",
		"Mean exact capsule tests per field evaluation.",
		func() float64 { return c.Snapshot().TestsPerSample() })
}

// FieldStats is a point-in-time copy of FieldCounters.
type FieldStats struct {
	Samples       uint64
	CapsuleTests  uint64
	BinsBuilt     uint64
	BinCandidates uint64
}

// TestsPerSample is the mean number of exact capsule distance tests each
// field evaluation performed — the quantity the culling grid exists to
// shrink (the unpruned fold tests every capsule, every sample).
func (s FieldStats) TestsPerSample() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.CapsuleTests) / float64(s.Samples)
}

// CandidatesPerBin is the mean candidate-list length across built bins.
func (s FieldStats) CandidatesPerBin() float64 {
	if s.BinsBuilt == 0 {
		return 0
	}
	return float64(s.BinCandidates) / float64(s.BinsBuilt)
}
