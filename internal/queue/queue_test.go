package queue

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestQueueDropPolicyKeepsFreshest(t *testing.T) {
	q := NewQueue[int](1, false)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got := q.Dropped(); got != 2 {
		t.Errorf("dropped %d, want 2", got)
	}
	v, err := q.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("got %d, want the freshest frame 2", v)
	}
}

func TestQueueDrainsAfterClose(t *testing.T) {
	q := NewQueue[int](4, false)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if err := q.Put(ctx, 99); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close: %v, want ErrClosed", err)
	}
	for i := 0; i < 3; i++ {
		v, err := q.Get(ctx)
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if v != i {
			t.Errorf("drain %d: got %d", i, v)
		}
	}
	if _, err := q.Get(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("get on drained closed queue: %v, want ErrClosed", err)
	}
}

func TestQueueLosslessBlocksUntilSpace(t *testing.T) {
	q := NewQueue[int](1, true)
	ctx := context.Background()
	if err := q.Put(ctx, 1); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- q.Put(ctx, 2) }()
	select {
	case err := <-unblocked:
		t.Fatalf("lossless put on a full queue returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if v, err := q.Get(ctx); err != nil || v != 1 {
		t.Fatalf("get: %d, %v", v, err)
	}
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("blocked put failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("put never unblocked after space freed")
	}
	if q.Dropped() != 0 {
		t.Errorf("lossless queue dropped %d frames", q.Dropped())
	}
}

func TestQueueCancellationSurfacesCause(t *testing.T) {
	boom := errors.New("stage exploded")
	ctx, cancel := context.WithCancelCause(context.Background())

	q := NewQueue[int](1, true)
	if err := q.Put(ctx, 1); err != nil {
		t.Fatal(err)
	}
	cancel(boom)
	if err := q.Put(ctx, 2); !errors.Is(err, boom) {
		t.Errorf("lossless put after cancel: %v, want the cancellation cause", err)
	}
	if v, err := q.Get(ctx); err != nil || v != 1 { // buffered item still drains (fast path)
		t.Fatalf("drain after cancel: %d, %v", v, err)
	}
	if _, err := q.Get(ctx); !errors.Is(err, boom) {
		t.Errorf("get on canceled context: %v, want the cancellation cause", err)
	}
}

func TestQueueGetUnblocksOnCancel(t *testing.T) {
	q := NewQueue[int](1, false)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.Get(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("get: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("get never unblocked on cancel")
	}
}
