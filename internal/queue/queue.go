package queue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"semholo/internal/obs"
)

// ErrClosed is returned by Queue.Get after the queue is closed and
// drained, and by Put on a closed queue. It is the normal end-of-stream
// signal between stages, not a failure.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded stage-connecting queue. In the default
// latest-frame-wins mode, Put never blocks: when the queue is full the
// oldest entry is evicted and counted as a drop — real-time telepresence
// prefers a fresh frame late-joining the queue over a stale frame at its
// head. In lossless mode Put blocks until there is room (or the context
// ends), preserving every frame for deterministic replay.
type Queue[T any] struct {
	ch       chan T
	lossless bool

	mu     sync.Mutex // serializes Put's evict-then-insert in drop mode
	closed chan struct{}
	once   sync.Once

	dropped atomic.Uint64

	// OnDrop, when set, observes each entry evicted by latest-frame-wins
	// Put — the hook feeding queue-drop events into the flight recorder
	// with the dropped frame's identity. Called synchronously under the
	// Put lock, so it must be cheap and must not touch the queue. Set it
	// before the queue is shared between goroutines.
	OnDrop func(evicted T)
}

// NewQueue builds a queue holding up to depth items (minimum 1).
// lossless selects blocking Puts over latest-frame-wins drops.
func NewQueue[T any](depth int, lossless bool) *Queue[T] {
	if depth < 1 {
		depth = 1
	}
	return &Queue[T]{
		ch:       make(chan T, depth),
		lossless: lossless,
		closed:   make(chan struct{}),
	}
}

// Put enqueues v. In drop mode it always succeeds immediately on an
// open queue (evicting the oldest entry when full); in lossless mode it
// blocks until space, close, or context cancellation.
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	if q.lossless {
		// Deterministic fail-fast: a closed queue or canceled context
		// refuses the frame even when buffer space happens to be free.
		select {
		case <-q.closed:
			return ErrClosed
		case <-ctx.Done():
			return context.Cause(ctx)
		default:
		}
		select {
		case <-q.closed:
			return ErrClosed
		case <-ctx.Done():
			return context.Cause(ctx)
		case q.ch <- v:
			return nil
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	// Drop-mode Put never blocks, so this check is the only point where
	// an unpaced producer loop observes shutdown.
	select {
	case <-q.closed:
		return ErrClosed
	case <-ctx.Done():
		return context.Cause(ctx)
	default:
	}
	for {
		select {
		case q.ch <- v:
			return nil
		default:
			// Full: evict the oldest (latest-frame-wins). The consumer may
			// race us to it, in which case the next insert attempt wins.
			select {
			case ev := <-q.ch:
				q.dropped.Add(1)
				if q.OnDrop != nil {
					q.OnDrop(ev)
				}
			default:
			}
		}
	}
}

// Get dequeues the next item. After Close, remaining items drain in
// order, then Get returns ErrClosed.
func (q *Queue[T]) Get(ctx context.Context) (T, error) {
	var zero T
	// Fast path — also guarantees drain-after-close.
	select {
	case v := <-q.ch:
		return v, nil
	default:
	}
	select {
	case v := <-q.ch:
		return v, nil
	case <-ctx.Done():
		return zero, context.Cause(ctx)
	case <-q.closed:
		// Lost a race with a concurrent Put that landed before Close.
		select {
		case v := <-q.ch:
			return v, nil
		default:
			return zero, ErrClosed
		}
	}
}

// Close marks the end of the stream: pending items remain Gettable,
// further Puts fail with ErrClosed. Idempotent.
func (q *Queue[T]) Close() { q.once.Do(func() { close(q.closed) }) }

// Len reports the current queue depth.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Dropped reports how many stale entries latest-frame-wins eviction has
// discarded.
func (q *Queue[T]) Dropped() uint64 { return q.dropped.Load() }

// Instrument registers the queue's live depth and drop count into reg,
// labeled by site ("sender"/"receiver") and queue name (the stage the
// queue feeds), so a /metrics scrape shows where backpressure lands.
func (q *Queue[T]) Instrument(reg *obs.Registry, site, name string) {
	if reg == nil {
		return
	}
	reg.Gauge("semholo_pipeline_queue_depth",
		"Live depth of a stage-connecting pipeline queue.", "site", "queue").
		Func(func() float64 { return float64(q.Len()) }, site, name)
	reg.Counter("semholo_pipeline_dropped_frames_total",
		"Stale frames evicted by the latest-frame-wins queue policy.", "site", "queue").
		Func(func() float64 { return float64(q.Dropped()) }, site, name)
}
