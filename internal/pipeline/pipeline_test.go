package pipeline

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"semholo/internal/capture"
	"semholo/internal/core"
	"semholo/internal/netsim"
	"semholo/internal/transport"
)

// checkGoroutines snapshots the goroutine count and returns a verifier
// that fails the test (with a full stack dump) if the count has not
// returned to the baseline — the leak regression the staged runtime's
// lifecycle guarantees rule out.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			t.Fatalf("goroutine leak: %d live, baseline %d (stacks above)", n, base)
		}
	}
}

// countingCodec is a minimal deterministic Encoder/Decoder pair: the
// payload is the media frame's sequence number, optionally decoded with
// an artificial stage cost to provoke overload.
type countingCodec struct {
	seq         uint64
	decodeDelay time.Duration
	decoded     []uint64
}

func (c *countingCodec) Mode() core.Mode { return core.ModeKeypoint }

func (c *countingCodec) Encode(capture.Capture) (core.EncodedFrame, error) {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], c.seq)
	c.seq++
	return core.EncodedFrame{Channels: []core.ChannelPayload{{
		Channel: core.ChanKeypointData,
		Flags:   transport.FlagEndOfFrame,
		Payload: p[:],
	}}}, nil
}

func (c *countingCodec) Decode(frames []transport.Frame) (core.FrameData, error) {
	if c.decodeDelay > 0 {
		time.Sleep(c.decodeDelay)
	}
	if len(frames) != 1 || len(frames[0].Payload) != 8 {
		return core.FrameData{}, fmt.Errorf("bad fake frame: %d channels", len(frames))
	}
	c.decoded = append(c.decoded, binary.BigEndian.Uint64(frames[0].Payload))
	return core.FrameData{}, nil
}

// sessionPair dials both ends of an emulated link under ctx.
func sessionPair(t *testing.T, ctx context.Context, cfg netsim.LinkConfig) (send, recv *transport.Session, link *netsim.Link) {
	t.Helper()
	a, b, link := netsim.Pipe(cfg)
	type hs struct {
		s   *transport.Session
		err error
	}
	ch := make(chan hs, 1)
	go func() {
		s, _, err := transport.AcceptContext(ctx, b, transport.Hello{Peer: "recv"})
		ch <- hs{s, err}
	}()
	send, _, err := transport.DialContext(ctx, a, transport.Hello{Peer: "send"})
	if err != nil {
		t.Fatal(err)
	}
	h := <-ch
	if h.err != nil {
		t.Fatal(h.err)
	}
	return send, h.s, link
}

func TestStagedLosslessDeliversEveryFrameInOrder(t *testing.T) {
	leakCheck := checkGoroutines(t)
	ctx := context.Background()
	sendSess, recvSess, link := sessionPair(t, ctx, netsim.LinkConfig{})
	defer link.Close()

	const frames = 25
	codec := &countingCodec{}
	sender := &core.Sender{Session: sendSess, Encoder: codec}
	receiver := &core.Receiver{Session: recvSess, Decoder: codec}

	done := make(chan error, 1)
	var rstats ReceiverStats
	go func() {
		var err error
		rstats, err = RunReceiver(ctx, receiver, nil, ReceiverOptions{Frames: frames, Lossless: true})
		done <- err
	}()
	sstats, err := RunSender(ctx, sender, func(i int) (capture.Capture, bool) {
		return capture.Capture{}, true
	}, SenderOptions{Frames: frames, Lossless: true})
	if err != nil {
		t.Fatalf("sender: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if sstats.Captured != frames || sstats.Encoded != frames || sstats.Sent != frames {
		t.Errorf("sender stats %+v, want %d at every stage", sstats, frames)
	}
	if rstats.Received != frames || rstats.Decoded != frames || rstats.Rendered != frames {
		t.Errorf("receiver stats %+v, want %d at every stage", rstats, frames)
	}
	if sstats.Dropped != 0 || rstats.Dropped != 0 {
		t.Errorf("lossless run dropped frames: sender %d, receiver %d", sstats.Dropped, rstats.Dropped)
	}
	for i, seq := range codec.decoded {
		if seq != uint64(i) {
			t.Fatalf("frame %d decoded out of order: seq %d", i, seq)
		}
	}
	sendSess.Close()
	recvSess.Close()
	link.Close() // pumps must be down before the leak check
	leakCheck()
}

func TestStagedDropModeShedsBacklog(t *testing.T) {
	leakCheck := checkGoroutines(t)
	ctx := context.Background()
	sendSess, recvSess, link := sessionPair(t, ctx, netsim.LinkConfig{})
	defer link.Close()

	const frames = 30
	enc := &countingCodec{}
	// Decode costs 4× the capture interval: a sequential loop would build
	// a 3-frames-per-frame backlog; the staged runtime must shed it.
	dec := &countingCodec{decodeDelay: 4 * time.Millisecond}
	sender := &core.Sender{Session: sendSess, Encoder: enc}
	receiver := &core.Receiver{Session: recvSess, Decoder: dec}

	done := make(chan error, 1)
	var rstats ReceiverStats
	go func() {
		var err error
		rstats, err = RunReceiver(ctx, receiver, nil, ReceiverOptions{QueueDepth: 1})
		done <- err
	}()
	if _, err := RunSender(ctx, sender, func(i int) (capture.Capture, bool) {
		return capture.Capture{}, true
	}, SenderOptions{Frames: frames, Interval: time.Millisecond, Lossless: true}); err != nil {
		t.Fatalf("sender: %v", err)
	}
	sendSess.Close() // ends the receiver's recv stage
	if err := <-done; err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if rstats.Dropped == 0 {
		t.Errorf("overloaded drop-mode receiver dropped nothing: %+v", rstats)
	}
	if rstats.Rendered == 0 {
		t.Error("receiver rendered nothing")
	}
	if rstats.Rendered+int(rstats.Dropped) != rstats.Received {
		t.Errorf("frame accounting: received %d != rendered %d + dropped %d",
			rstats.Received, rstats.Rendered, rstats.Dropped)
	}
	recvSess.Close()
	link.Close()
	leakCheck()
}

func TestStagedCancelShutsDownCleanly(t *testing.T) {
	leakCheck := checkGoroutines(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sendSess, recvSess, link := sessionPair(t, ctx, netsim.LinkConfig{})
	defer link.Close()

	codec := &countingCodec{}
	sender := &core.Sender{Session: sendSess, Encoder: codec}
	receiver := &core.Receiver{Session: recvSess, Decoder: &countingCodec{}}

	sdone := make(chan error, 1)
	rdone := make(chan error, 1)
	go func() {
		// Unbounded stream: only cancellation ends it.
		_, err := RunSender(ctx, sender, func(i int) (capture.Capture, bool) {
			return capture.Capture{}, true
		}, SenderOptions{Interval: time.Millisecond})
		sdone <- err
	}()
	go func() {
		_, err := RunReceiver(ctx, receiver, nil, ReceiverOptions{})
		rdone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let frames flow
	cancel()
	for name, ch := range map[string]chan error{"sender": sdone, "receiver": rdone} {
		select {
		case err := <-ch:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("%s exited with %v, want nil or context.Canceled", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never exited after cancel", name)
		}
	}
	sendSess.Close()
	recvSess.Close()
	link.Close()
	leakCheck()
}

func TestGroupPropagatesFirstError(t *testing.T) {
	boom := errors.New("stage failed")
	g, _ := NewGroup(context.Background())
	g.Go(func(ctx context.Context) error { return boom })
	g.Go(func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return nil // sibling failure canceled us — clean exit
		case <-time.After(5 * time.Second):
			return errors.New("sibling error never canceled the group")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Errorf("Wait: %v, want the first stage error", err)
	}
}

// failingEncoder errors after n successful frames — a mid-stream encode
// stage failure.
type failingEncoder struct {
	countingCodec
	n   int
	err error
}

func (f *failingEncoder) Encode(c capture.Capture) (core.EncodedFrame, error) {
	if f.n == 0 {
		return core.EncodedFrame{}, f.err
	}
	f.n--
	return f.countingCodec.Encode(c)
}

func TestStageErrorSurfacesThroughRunSender(t *testing.T) {
	leakCheck := checkGoroutines(t)
	ctx := context.Background()
	sendSess, recvSess, link := sessionPair(t, ctx, netsim.LinkConfig{})
	defer link.Close()
	defer recvSess.Close()

	boom := errors.New("capture rig unplugged")
	sender := &core.Sender{Session: sendSess, Encoder: &failingEncoder{n: 3, err: boom}}
	_, err := RunSender(ctx, sender, func(i int) (capture.Capture, bool) {
		return capture.Capture{}, true
	}, SenderOptions{Lossless: true})
	if !errors.Is(err, boom) {
		t.Errorf("RunSender: %v, want the encode stage error", err)
	}
	sendSess.Close()
	recvSess.Close()
	link.Close()
	leakCheck()
}

// benignShutdown accepts the error shapes a deliberately torn-down
// pipeline may surface: nothing, cancellation, or the session going
// away under a mid-flight wire op.
func benignShutdown(err error) bool {
	return err == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, core.ErrSessionClosed)
}

// TestConcurrentShutdownHammer races pipeline startup against
// cancellation, peer close, and session close from another goroutine —
// run under -race this exercises every shutdown ordering.
func TestConcurrentShutdownHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	leakCheck := checkGoroutines(t)
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		sendSess, recvSess, link := sessionPair(t, ctx, netsim.LinkConfig{})

		sender := &core.Sender{Session: sendSess, Encoder: &countingCodec{}}
		receiver := &core.Receiver{Session: recvSess, Decoder: &countingCodec{}}
		sdone := make(chan error, 1)
		rdone := make(chan error, 1)
		go func() {
			_, err := RunSender(ctx, sender, func(int) (capture.Capture, bool) {
				return capture.Capture{}, true
			}, SenderOptions{})
			sdone <- err
		}()
		go func() {
			_, err := RunReceiver(ctx, receiver, nil, ReceiverOptions{})
			rdone <- err
		}()

		// Vary the shutdown vector and its timing with the iteration.
		time.Sleep(time.Duration(i%7) * time.Millisecond)
		switch i % 3 {
		case 0:
			cancel()
		case 1:
			sendSess.Close()
		case 2:
			recvSess.Close()
		}
		for _, ch := range []chan error{sdone, rdone} {
			select {
			case err := <-ch:
				if !benignShutdown(err) {
					t.Fatalf("iter %d: pipeline error %v", i, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("iter %d: pipeline never exited", i)
			}
		}
		cancel()
		sendSess.Close()
		recvSess.Close()
		link.Close()
	}
	leakCheck()
}
