package pipeline

import (
	"context"
	"errors"
	"io"
	"net"

	"semholo/internal/core"
	"semholo/internal/obs"
	"semholo/internal/queue"
)

// Sink consumes decoded frames on the render stage — the "photon" end
// of the motion-to-photon path (display, OBJ dump, measurement probe).
// It is called from the render stage goroutine only.
type Sink func(data core.FrameData) error

// ReceiverOptions configures RunReceiver.
type ReceiverOptions struct {
	// Frames bounds how many media frames to take off the wire (<= 0:
	// until the peer closes).
	Frames int
	// QueueDepth bounds each stage-connecting queue (default 1).
	QueueDepth int
	// Lossless disables latest-frame-wins drops so every received frame
	// is decoded and rendered (determinism / replay mode).
	Lossless bool
	// Registry, when set, receives per-queue depth gauges and drop
	// counters.
	Registry *obs.Registry
	// Site labels the queue metrics (default "receiver").
	Site string
}

// ReceiverStats reports what a RunReceiver invocation did.
type ReceiverStats struct {
	// Received / Decoded / Rendered are per-stage media frame counts; in
	// drop mode stale frames vanish between stages.
	Received int
	Decoded  int
	Rendered int
	// Dropped counts stale frames discarded by latest-frame-wins queues.
	Dropped uint64
}

// RunReceiver drives one receiving site as three overlapped stages —
// recv ∥ decode ∥ render — connected by bounded queues, and returns
// once every stage has exited: after the peer closes (graceful, queues
// drain), on the first stage error, or on context cancellation. The
// receiver's Session should be bound to the same context
// (AcceptContext) so cancellation also unblocks the wire read.
func RunReceiver(ctx context.Context, r *core.Receiver, sink Sink, opt ReceiverOptions) (ReceiverStats, error) {
	if opt.Site == "" {
		opt.Site = "receiver"
	}
	decQ := queue.NewQueue[core.RawFrame](opt.QueueDepth, opt.Lossless)
	renderQ := queue.NewQueue[core.FrameData](opt.QueueDepth, opt.Lossless)
	decQ.Instrument(opt.Registry, opt.Site, "decode")
	renderQ.Instrument(opt.Registry, opt.Site, "render")
	// Receiver-side evictions carry the dropped frame's trace ID when the
	// sender traced it, so a /debug/flight dump names the exact frames a
	// latency spike cost.
	decQ.OnDrop = func(ev core.RawFrame) {
		var id uint64
		if ev.Trace != nil {
			id = ev.Trace.TraceID
		}
		obs.Flight.Record(obs.EvQueueDrop, opt.Site+":decode", id, 0, 0)
	}
	renderQ.OnDrop = func(ev core.FrameData) {
		var id uint64
		if ev.Trace != nil {
			id = ev.Trace.TraceID
		}
		obs.Flight.Record(obs.EvQueueDrop, opt.Site+":render", id, 0, 0)
	}

	var stats ReceiverStats
	g, ctx := NewGroup(ctx)
	// A decode/render failure must unblock a recv stage stalled on the wire.
	defer closeOnFailure(ctx, r.Session)()

	// Recv stage: pulls wire frames off the session. Kept free of decode
	// work so the socket is always being drained — backlog lands in the
	// drop-policy queue, not in kernel buffers where it ages invisibly.
	g.Go(func(ctx context.Context) error {
		defer decQ.Close()
		for i := 0; opt.Frames <= 0 || i < opt.Frames; i++ {
			raw, err := r.NextRaw()
			if err != nil {
				// A session that closed — gracefully by the peer, or under
				// us during teardown — is the normal end of the stream.
				if errors.Is(err, core.ErrSessionClosed) || errors.Is(err, io.EOF) ||
					errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
					return nil
				}
				return ignoreClosed(err)
			}
			stats.Received++
			if err := decQ.Put(ctx, raw); err != nil {
				return ignoreClosed(err)
			}
		}
		return nil
	})

	// Decode stage: reconstruction — the receiver's compute-heavy hop.
	g.Go(func(ctx context.Context) error {
		defer renderQ.Close()
		for {
			raw, err := decQ.Get(ctx)
			if err != nil {
				return ignoreClosed(err)
			}
			data, err := r.DecodeRaw(raw)
			if err != nil {
				return ignoreClosed(err)
			}
			stats.Decoded++
			if err := renderQ.Put(ctx, data); err != nil {
				return ignoreClosed(err)
			}
		}
	})

	// Render stage: hands frames to the sink, recording the render span.
	g.Go(func(ctx context.Context) error {
		for {
			data, err := renderQ.Get(ctx)
			if err != nil {
				return ignoreClosed(err)
			}
			if sink != nil {
				stop := r.Obs.StartStage(obs.StageRender)
				err := sink(data)
				stop()
				if err != nil {
					return err
				}
			}
			if data.Trace != nil {
				obs.Flight.Record(obs.EvFrameRendered, opt.Site, data.Trace.TraceID, 0, 0)
			}
			stats.Rendered++
		}
	})

	err := g.Wait()
	if err != nil && !errors.Is(err, context.Canceled) {
		// Auto-snapshot on pipeline failure: freeze the flight ring so the
		// events leading up to the error survive for /debug/flight.
		obs.Flight.Record(obs.EvError, opt.Site, 0, 0, 0)
		obs.Flight.Snapshot(opt.Site + ": " + err.Error())
	}
	stats.Dropped = decQ.Dropped() + renderQ.Dropped()
	return stats, err
}
