package pipeline

import (
	"context"
	"errors"
	"time"

	"semholo/internal/capture"
	"semholo/internal/core"
	"semholo/internal/obs"
	"semholo/internal/queue"
)

// Source produces capture frames for the staged sender. Returning
// ok=false ends the stream gracefully. It is called from the capture
// stage goroutine only.
type Source func(i int) (capture.Capture, bool)

// SenderOptions configures RunSender.
type SenderOptions struct {
	// Frames bounds the stream length (<= 0: until the Source ends or
	// the context is canceled).
	Frames int
	// Interval paces the capture stage (0 = unpaced). With the staged
	// runtime the pace is held even when encode or send momentarily
	// exceed the frame budget — stale work is dropped instead.
	Interval time.Duration
	// QueueDepth bounds each stage-connecting queue (default 1 — the
	// freshest-frame regime).
	QueueDepth int
	// Lossless disables latest-frame-wins drops: producers block on full
	// queues, every captured frame reaches the wire, output matches the
	// sequential loop byte for byte.
	Lossless bool
	// Registry, when set, receives per-queue depth gauges and drop
	// counters.
	Registry *obs.Registry
	// Site labels the queue metrics (default "sender").
	Site string
}

// SenderStats reports what a RunSender invocation did.
type SenderStats struct {
	// Captured / Encoded / Sent are per-stage media frame counts; in
	// drop mode they decrease monotonically along the pipeline.
	Captured int
	Encoded  int
	Sent     int
	// Dropped counts stale frames discarded by latest-frame-wins queues.
	Dropped uint64
}

// capturedFrame carries a frame between the capture and encode stages.
type capturedFrame struct {
	c  capture.Capture
	at time.Time
}

// encodedFrame carries a frame between the encode and send stages.
type encodedFrame struct {
	enc core.EncodedFrame
	at  time.Time
}

// RunSender drives one sending site as three overlapped stages —
// capture ∥ encode ∥ send — connected by bounded queues, and returns
// once every stage has exited: after the source ends (graceful, queues
// drain), on the first stage error, or on context cancellation. The
// sender's Session should be bound to the same context (DialContext) so
// cancellation also unblocks in-flight writes.
func RunSender(ctx context.Context, s *core.Sender, src Source, opt SenderOptions) (SenderStats, error) {
	if opt.Site == "" {
		opt.Site = "sender"
	}
	capQ := queue.NewQueue[capturedFrame](opt.QueueDepth, opt.Lossless)
	sendQ := queue.NewQueue[encodedFrame](opt.QueueDepth, opt.Lossless)
	capQ.Instrument(opt.Registry, opt.Site, "encode")
	sendQ.Instrument(opt.Registry, opt.Site, "send")
	// Every latest-frame-wins eviction lands in the flight recorder, so a
	// /debug/flight dump shows exactly which stage was shedding when a
	// latency spike hit. Trace IDs are assigned at Transmit, so sender-side
	// drops carry the capture timestamp instead.
	capQ.OnDrop = func(ev capturedFrame) {
		obs.Flight.Record(obs.EvQueueDrop, opt.Site+":encode", 0, ev.at.UnixMicro(), 0)
	}
	sendQ.OnDrop = func(ev encodedFrame) {
		obs.Flight.Record(obs.EvQueueDrop, opt.Site+":send", 0, ev.at.UnixMicro(), 0)
	}

	var stats SenderStats
	g, ctx := NewGroup(ctx)
	// A stage failure must unblock siblings stalled on the wire.
	defer closeOnFailure(ctx, s.Session)()

	// Capture stage: paced frame production. Never blocks on downstream
	// in drop mode, so the capture clock stays honest under overload.
	g.Go(func(ctx context.Context) error {
		defer capQ.Close()
		var ticker *time.Ticker
		if opt.Interval > 0 {
			ticker = time.NewTicker(opt.Interval)
			defer ticker.Stop()
		}
		for i := 0; opt.Frames <= 0 || i < opt.Frames; i++ {
			begin := time.Now()
			c, ok := src(i)
			if !ok {
				return nil
			}
			s.Obs.ObserveStage(obs.StageCapture, time.Since(begin))
			obs.Flight.Record(obs.EvFrameCaptured, opt.Site, 0, int64(i), 0)
			if err := capQ.Put(ctx, capturedFrame{c: c, at: begin}); err != nil {
				return ignoreClosed(err)
			}
			stats.Captured++
			if ticker != nil {
				select {
				case <-ticker.C:
				case <-ctx.Done():
					return nil
				}
			}
		}
		return nil
	})

	// Encode stage: the compute-heavy hop, isolated so it can run a full
	// frame behind capture without stalling it.
	g.Go(func(ctx context.Context) error {
		defer sendQ.Close()
		for {
			f, err := capQ.Get(ctx)
			if err != nil {
				return ignoreClosed(err)
			}
			enc, err := s.EncodeFrame(f.c)
			if err != nil {
				return ignoreClosed(err)
			}
			// Encoders may reuse their Channels backing array across frames
			// (the sequential contract: output consumed before the next
			// Encode). The queue decouples encode from send, so detach the
			// slice here; payload buffers are freshly allocated per frame
			// by every encoder, so a shallow copy suffices.
			enc.Channels = append([]core.ChannelPayload(nil), enc.Channels...)
			stats.Encoded++
			if err := sendQ.Put(ctx, encodedFrame{enc: enc, at: f.at}); err != nil {
				return ignoreClosed(err)
			}
		}
	})

	// Send stage: wire writes, which block on link serialization under
	// constrained bandwidth — exactly the stall the queue absorbs.
	g.Go(func(ctx context.Context) error {
		for {
			f, err := sendQ.Get(ctx)
			if err != nil {
				return ignoreClosed(err)
			}
			begin := time.Now()
			if err := s.Transmit(f.enc, f.at); err != nil {
				// A canceled session surfaces context.Canceled via the
				// transport's error translation — a graceful exit here.
				return ignoreClosed(err)
			}
			// A wire write that blows the frame budget is a stall: record it
			// and snapshot the ring so the events leading up to it survive.
			if d := time.Since(begin); opt.Interval > 0 && d > opt.Interval {
				obs.Flight.Record(obs.EvStall, opt.Site+":send", 0, d.Microseconds(), 0)
				obs.Flight.Snapshot(opt.Site + ": send stall")
			}
			stats.Sent++
		}
	})

	err := g.Wait()
	if err != nil && !errors.Is(err, context.Canceled) {
		// Auto-snapshot on pipeline failure: freeze the flight ring so the
		// events leading up to the error survive for /debug/flight.
		obs.Flight.Record(obs.EvError, opt.Site, 0, 0, 0)
		obs.Flight.Snapshot(opt.Site + ": " + err.Error())
	}
	stats.Dropped = capQ.Dropped() + sendQ.Dropped()
	return stats, err
}

// ignoreClosed maps the inter-stage end-of-stream sentinel (and the
// cancellation it propagates) to a clean stage exit; everything else is
// a real error.
func ignoreClosed(err error) error {
	if errors.Is(err, queue.ErrClosed) || errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
