// Package pipeline is SemHolo's concurrent staged runtime: it executes
// the paper's Figure-1 pipeline (capture → extract/encode → send ‖
// recv → decode → render) as one goroutine per stage connected by
// bounded queues, so a site's end-to-end latency approaches the *max*
// of its stage latencies instead of their sum, and a slow stage can
// never stall capture or the network.
//
// Real-time telepresence must never build backlog: the queues default
// to a latest-frame-wins drop policy (a full queue evicts its oldest
// entry, the drop is counted, and the producer never blocks). Lossless
// mode — producers block on a full queue — exists for determinism
// testing and offline replay, where every frame matters and wall-clock
// latency does not.
//
// Lifecycle is context-driven and errgroup-style: every stage runs
// under a Group; the first stage error cancels the rest, cancellation
// tears down the transport session (see transport.DialContext), and
// RunSender/RunReceiver return only after every stage goroutine has
// exited — no leaks, no orphan goroutines, deterministic shutdown.
package pipeline

import (
	"context"
	"errors"
	"sync"

	"semholo/internal/transport"
)

// Group runs a set of goroutines under one context with first-error
// propagation: the first non-nil error cancels the group's context and
// is returned by Wait. A stdlib-only errgroup (the module is
// dependency-free by design).
type Group struct {
	ctx    context.Context
	cancel context.CancelCauseFunc

	wg      sync.WaitGroup
	errOnce sync.Once
	err     error
}

// NewGroup derives a group (and its context) from parent. Canceling the
// parent cancels the group.
func NewGroup(parent context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancelCause(parent)
	return &Group{ctx: ctx, cancel: cancel}, ctx
}

// Go runs fn in a new goroutine. A non-nil return records the group's
// first error and cancels the group context (with the error as cause),
// prompting sibling stages to drain and exit.
func (g *Group) Go(fn func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(g.ctx); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				g.cancel(err)
			})
		}
	}()
}

// Wait blocks until every goroutine started with Go has exited, then
// cancels the group context (releasing any watchers) and returns the
// first error, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel(nil)
	return g.err
}

// closeOnFailure watches a group context and force-closes the session
// when the group fails with a real error, so sibling stages blocked on
// wire I/O (a send stalled on a congested link, a recv waiting for a
// frame) unblock and the group can join. Graceful completion and plain
// cancellation are left to the session's own context binding
// (DialContext/AcceptContext). The returned stop func releases the
// watcher.
func closeOnFailure(ctx context.Context, sess *transport.Session) func() bool {
	return context.AfterFunc(ctx, func() {
		if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
			_ = sess.Close()
		}
	})
}
