package pipeline

import (
	"context"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"semholo/internal/body"
	"semholo/internal/capture"
	"semholo/internal/compress"
	"semholo/internal/core"
	"semholo/internal/geom"
	"semholo/internal/keypoint"
	"semholo/internal/netsim"
)

// TestStagedMatchesSequentialByteForByte is the wire-compatibility
// regression for the staged runtime: with drops disabled, overlapping
// the stages must be a pure scheduling change — the decoded output of a
// 50-frame motion sequence is identical to the sequential loop's, frame
// for frame. Everything in the pipeline is seeded (capture noise,
// detector, one-euro filter driven by capture time), so any divergence
// is a real reordering or state-corruption bug.
func TestStagedMatchesSequentialByteForByte(t *testing.T) {
	const frames = 50
	model := body.NewModel(nil, body.ModelOptions{Detail: 1})
	seq := &capture.Sequence{
		Model:  model,
		Motion: body.Talking(nil),
		Rig:    capture.NewRing(4, 2.5, 1.0, geom.V3(0, 1.0, 0), 96, math.Pi/3, 17),
		FPS:    30,
		Render: capture.SkinShader(),
	}
	caps := make([]capture.Capture, frames)
	for i := range caps {
		caps[i] = seq.FrameAt(i)
	}

	sequential := runDeterminismLeg(t, model, caps, false)
	staged := runDeterminismLeg(t, model, caps, true)

	if len(staged) != len(sequential) {
		t.Fatalf("staged decoded %d frames, sequential %d", len(staged), len(sequential))
	}
	for i := range sequential {
		want, got := sequential[i], staged[i]
		if !reflect.DeepEqual(want.Params, got.Params) {
			t.Fatalf("frame %d: decoded params diverge", i)
		}
		if !reflect.DeepEqual(want.Mesh, got.Mesh) {
			t.Fatalf("frame %d: reconstructed mesh diverges", i)
		}
		if !reflect.DeepEqual(want.VertexColors, got.VertexColors) {
			t.Fatalf("frame %d: vertex colors diverge", i)
		}
	}
}

// runDeterminismLeg streams caps over a clean emulated link with fresh,
// identically-seeded codec state and returns every decoded frame.
func runDeterminismLeg(t *testing.T, model *body.Model, caps []capture.Capture, staged bool) []core.FrameData {
	t.Helper()
	ctx := context.Background()
	sendSess, recvSess, link := sessionPair(t, ctx, netsim.LinkConfig{})
	defer link.Close()

	enc := &core.KeypointEncoder{
		Model:    model,
		Detector: keypoint.NewDetector(keypoint.DefaultDetector()),
		Filter:   keypoint.NewOneEuroFilter(1.0, 0.3),
		Codec:    compress.LZR(),
	}
	dec := &core.KeypointDecoder{Model: model, Codec: compress.LZR(), Resolution: 32}
	sender := &core.Sender{Session: sendSess, Encoder: enc}
	receiver := &core.Receiver{Session: recvSess, Decoder: dec}

	decoded := make([]core.FrameData, 0, len(caps))
	if staged {
		done := make(chan error, 1)
		go func() {
			_, err := RunReceiver(ctx, receiver, func(data core.FrameData) error {
				decoded = append(decoded, data)
				return nil
			}, ReceiverOptions{Frames: len(caps), Lossless: true})
			done <- err
		}()
		if _, err := RunSender(ctx, sender, func(i int) (capture.Capture, bool) {
			if i >= len(caps) {
				return capture.Capture{}, false
			}
			return caps[i], true
		}, SenderOptions{Lossless: true}); err != nil {
			t.Fatalf("staged sender: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("staged receiver: %v", err)
		}
	} else {
		done := make(chan error, 1)
		go func() {
			for range caps {
				data, err := receiver.NextFrame()
				if err != nil {
					done <- err
					return
				}
				decoded = append(decoded, data)
			}
			done <- nil
		}()
		for _, c := range caps {
			if err := sender.SendFrame(c); err != nil {
				t.Fatalf("sequential send: %v", err)
			}
		}
		if err := <-done; err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("sequential receive: %v", err)
		}
	}
	sendSess.Close()
	recvSess.Close()
	return decoded
}
