// Package par provides the shared worker-pool primitives behind the
// repository's hot compute kernels: isosurface extraction, software
// rasterization, NeRF ray batches, and the multi-camera capture rig.
//
// The package is deliberately tiny. Kernels express data parallelism as
// index-space loops (For / ForChunks over [0,n)); par bounds concurrency
// by GOMAXPROCS and falls back to a plain inline loop when the resolved
// worker count is 1, so the serial path stays byte-identical to the
// pre-parallel code and every kernel can be regression-tested by
// comparing Workers=1 against Workers=N output.
//
// Determinism contract: par never reorders results — callers write to
// disjoint output slots (or per-worker accumulators merged in a fixed
// order), so the observable output of a well-formed kernel does not
// depend on the worker count or on goroutine scheduling.
package par

import (
	"runtime"
	"sync"
)

// Resolve maps a Workers knob to a concrete worker count: values <= 0
// mean "use all available parallelism" (GOMAXPROCS); positive values are
// used as given. Call sites that need strict serial execution pass 1.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Range is one contiguous chunk [Lo, Hi) of an index space.
type Range struct {
	Lo, Hi int
}

// Split partitions [0, n) into at most workers contiguous, near-equal
// ranges (never more than n). The partition is a pure function of
// (workers, n), so chunk-indexed scratch and ordered merges are
// deterministic.
func Split(workers, n int) []Range {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	out := make([]Range, 0, workers)
	chunk := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// ForChunks splits [0, n) into at most workers contiguous chunks and
// runs fn(chunk, lo, hi) for each, concurrently when more than one chunk
// results. chunk indexes the deterministic Split partition, so callers
// can attach per-worker scratch or per-chunk result slots to it. With
// workers <= 1 (or n <= 1) fn runs inline on the calling goroutine.
func ForChunks(workers, n int, fn func(chunk, lo, hi int)) {
	ranges := Split(workers, n)
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		fn(0, ranges[0].Lo, ranges[0].Hi)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for c := range ranges {
		go func(c int) {
			defer wg.Done()
			fn(c, ranges[c].Lo, ranges[c].Hi)
		}(c)
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, n), distributing contiguous index
// chunks over at most workers goroutines. The serial fallback
// (workers <= 1) is an inline loop. fn must only write to state owned by
// index i (e.g. out[i]) for the result to be worker-count independent.
func For(workers, n int, fn func(i int)) {
	ForChunks(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// floatPool recycles float64 scratch buffers across kernel invocations
// (slab samples, per-ray losses, gradient accumulators) so steady-state
// frame loops stop allocating.
var floatPool = sync.Pool{New: func() any { return []float64(nil) }}

// GetFloats returns a zeroed []float64 of length n from the pool.
func GetFloats(n int) []float64 {
	buf := floatPool.Get().([]float64)
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// PutFloats returns a buffer obtained from GetFloats to the pool.
func PutFloats(buf []float64) {
	if buf == nil {
		return
	}
	floatPool.Put(buf[:0])
}
