package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

func TestSplitCoversWithoutOverlap(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 16, 17, 100} {
			ranges := Split(workers, n)
			if n == 0 {
				if ranges != nil {
					t.Fatalf("Split(%d, 0) = %v", workers, ranges)
				}
				continue
			}
			if len(ranges) > workers || len(ranges) > n {
				t.Fatalf("Split(%d, %d) produced %d chunks", workers, n, len(ranges))
			}
			lo := 0
			for _, r := range ranges {
				if r.Lo != lo || r.Hi <= r.Lo {
					t.Fatalf("Split(%d, %d) bad range %v (expected lo %d)", workers, n, r, lo)
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Split(%d, %d) covers [0,%d)", workers, n, lo)
			}
			// Near-equal: sizes differ by at most one.
			min, max := n, 0
			for _, r := range ranges {
				if s := r.Hi - r.Lo; s < min {
					min = s
				} else if s > max {
					max = s
				}
			}
			if max-min > 1 {
				t.Fatalf("Split(%d, %d) unbalanced: min %d max %d", workers, n, min, max)
			}
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 1000
		var counts [n]int32
		For(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForChunksMatchesSplit(t *testing.T) {
	const n = 37
	for _, workers := range []int{1, 4} {
		seen := make([]Range, 0)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ForChunks(workers, n, func(chunk, lo, hi int) {
			<-mu
			seen = append(seen, Range{lo, hi})
			mu <- struct{}{}
		})
		total := 0
		for _, r := range seen {
			total += r.Hi - r.Lo
		}
		if total != n {
			t.Fatalf("workers=%d covered %d of %d indices", workers, total, n)
		}
	}
}

func TestFloatPoolZeroes(t *testing.T) {
	buf := GetFloats(16)
	for i := range buf {
		buf[i] = float64(i)
	}
	PutFloats(buf)
	buf2 := GetFloats(8)
	for i, v := range buf2 {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	PutFloats(buf2)
	PutFloats(nil) // must not panic
}
