package par

import (
	"context"
	"sync"
)

// Pool is a process-wide budget of worker slots shared by independent
// tenants. Kernels in this repository bound their own goroutine count by
// a Workers knob; before Pool existed every caller resolved that knob
// against GOMAXPROCS independently, so N concurrent decoders asked for
// N×GOMAXPROCS workers and oversubscribed the machine. A Pool makes the
// budget explicit: callers Reserve a slice of the capacity (blocking
// until slots free up), run their kernel with exactly that many workers,
// and Release the slice when done — the sum of outstanding grants never
// exceeds the capacity.
//
// Waiters are served strictly FIFO. A tenant that reserves once per
// frame therefore re-queues behind every other waiting tenant after each
// frame, which yields round-robin admission across tenants without any
// explicit scheduling state — the fairness property the multi-tenant
// decode service builds on.
//
// Outputs never depend on grant size: every kernel in the repository is
// worker-count invariant (see the package comment), so a tenant granted
// 2 workers under load produces bytes identical to the same tenant
// granted 8 workers on an idle pool.
type Pool struct {
	capacity int

	mu      sync.Mutex
	free    int
	waiters []*poolWaiter
}

// poolWaiter is one blocked Reserve call. The grant channel has capacity
// 1 so Release never blocks handing out slots.
type poolWaiter struct {
	want  int
	grant chan int
}

// NewPool returns a pool with the given slot capacity; capacity <= 0
// resolves to GOMAXPROCS (the whole machine).
func NewPool(capacity int) *Pool {
	capacity = Resolve(capacity)
	return &Pool{capacity: capacity, free: capacity}
}

// Capacity returns the total slot budget.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns how many slots are currently reserved.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.free
}

// Waiting returns how many Reserve calls are currently blocked.
func (p *Pool) Waiting() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}

// Reserve blocks until at least one slot is free and the caller has
// reached the head of the FIFO queue, then grants between 1 and want
// slots (want <= 0 or > capacity asks for the full capacity). The caller
// must Release exactly the returned grant when its kernel finishes. If
// ctx is canceled while waiting, Reserve returns 0 and the context's
// error, and no slots are held.
func (p *Pool) Reserve(ctx context.Context, want int) (int, error) {
	if want <= 0 || want > p.capacity {
		want = p.capacity
	}
	p.mu.Lock()
	if len(p.waiters) == 0 && p.free > 0 {
		g := min(want, p.free)
		p.free -= g
		p.mu.Unlock()
		return g, nil
	}
	w := &poolWaiter{want: want, grant: make(chan int, 1)}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()

	select {
	case g := <-w.grant:
		return g, nil
	case <-ctx.Done():
		p.mu.Lock()
		for i, q := range p.waiters {
			if q == w {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				p.mu.Unlock()
				return 0, ctx.Err()
			}
		}
		p.mu.Unlock()
		// Release won the race and already granted: take the slots back
		// (the grant channel is buffered, so the value is waiting).
		p.Release(<-w.grant)
		return 0, ctx.Err()
	}
}

// Release returns n slots obtained from Reserve and hands freed capacity
// to waiters in FIFO order.
func (p *Pool) Release(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	p.free += n
	if p.free > p.capacity {
		panic("par: Pool.Release returned more slots than were reserved")
	}
	for p.free > 0 && len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		g := min(w.want, p.free)
		p.free -= g
		w.grant <- g
	}
	p.mu.Unlock()
}

// Go runs fn on its own goroutine under a one-slot reservation: at most
// Capacity() Go-launched functions execute concurrently, and a burst of
// submissions queues FIFO behind the running ones. Go itself never
// blocks the caller.
func (p *Pool) Go(fn func()) {
	go func() {
		g, _ := p.Reserve(context.Background(), 1)
		defer p.Release(g)
		fn()
	}()
}
