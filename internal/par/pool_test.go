package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBudgetNeverExceeded hammers Reserve/Release from many
// goroutines and checks the sum of outstanding grants never exceeds the
// capacity.
func TestPoolBudgetNeverExceeded(t *testing.T) {
	const capacity = 4
	p := NewPool(capacity)
	var outstanding atomic.Int64
	var peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				want := 1 + (id+j)%capacity
				g, err := p.Reserve(context.Background(), want)
				if err != nil {
					t.Errorf("Reserve: %v", err)
					return
				}
				if g < 1 || g > want {
					t.Errorf("grant %d outside [1,%d]", g, want)
				}
				now := outstanding.Add(int64(g))
				for {
					old := peak.Load()
					if now <= old || peak.CompareAndSwap(old, now) {
						break
					}
				}
				outstanding.Add(-int64(g))
				p.Release(g)
			}
		}(i)
	}
	wg.Wait()
	if got := peak.Load(); got > capacity {
		t.Fatalf("outstanding grants peaked at %d, capacity %d", got, capacity)
	}
	if p.InUse() != 0 {
		t.Fatalf("pool not drained: %d in use", p.InUse())
	}
}

// TestPoolFIFOOrder checks waiters are served in arrival order: on a
// one-slot pool, queued reservations complete in the order they queued.
func TestPoolFIFOOrder(t *testing.T) {
	p := NewPool(1)
	g, err := p.Reserve(context.Background(), 1)
	if err != nil || g != 1 {
		t.Fatalf("initial Reserve = %d, %v", g, err)
	}

	const n = 8
	order := make(chan int, n)
	queued := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Serialize queue entry so arrival order is deterministic.
			<-queued
			grant, err := p.Reserve(context.Background(), 1)
			if err != nil {
				t.Errorf("Reserve: %v", err)
				return
			}
			order <- id
			p.Release(grant)
		}(i)
		// Admit goroutine i and wait until it is parked in the queue.
		queued <- struct{}{}
		waitFor(t, func() bool { return p.Waiting() == i+1 })
	}

	p.Release(g)
	wg.Wait()
	close(order)
	want := 0
	for id := range order {
		if id != want {
			t.Fatalf("waiter %d served out of order (expected %d)", id, want)
		}
		want++
	}
}

// TestPoolReserveCancel cancels a blocked Reserve and checks no slots
// leak: the pool still hands its full capacity to the next caller.
func TestPoolReserveCancel(t *testing.T) {
	p := NewPool(2)
	g, err := p.Reserve(context.Background(), 2)
	if err != nil || g != 2 {
		t.Fatalf("initial Reserve = %d, %v", g, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Reserve(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return p.Waiting() == 1 })
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled Reserve returned %v, want context.Canceled", err)
	}
	p.Release(g)
	if got := p.InUse(); got != 0 {
		t.Fatalf("slots leaked after cancel: %d in use", got)
	}
	if g, err := p.Reserve(context.Background(), 2); err != nil || g != 2 {
		t.Fatalf("post-cancel Reserve = %d, %v; want full capacity", g, err)
	}
}

// TestPoolReserveCancelRace exercises the cancel-vs-grant race: cancel
// fires while Release is handing the waiter its slots. Whatever the
// interleaving, the slot must come back.
func TestPoolReserveCancelRace(t *testing.T) {
	p := NewPool(1)
	for i := 0; i < 200; i++ {
		g, _ := p.Reserve(context.Background(), 1)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			if grant, err := p.Reserve(ctx, 1); err == nil {
				p.Release(grant)
			}
			close(done)
		}()
		waitFor(t, func() bool { return p.Waiting() == 1 })
		go cancel()
		p.Release(g)
		<-done
		cancel()
		if g, err := p.Reserve(context.Background(), 1); err != nil || g != 1 {
			t.Fatalf("iter %d: slot lost to cancel race (grant %d, %v)", i, g, err)
		}
		p.Release(1)
	}
}

// TestPoolGoBoundsConcurrency submits a burst of Go tasks and checks at
// most Capacity run at once while all eventually complete.
func TestPoolGoBoundsConcurrency(t *testing.T) {
	const capacity, tasks = 3, 30
	p := NewPool(capacity)
	var running, peak, total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(tasks)
	for i := 0; i < tasks; i++ {
		p.Go(func() {
			defer wg.Done()
			now := running.Add(1)
			for {
				old := peak.Load()
				if now <= old || peak.CompareAndSwap(old, now) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			total.Add(1)
		})
	}
	wg.Wait()
	if got := peak.Load(); got > capacity {
		t.Fatalf("Go ran %d tasks concurrently, capacity %d", got, capacity)
	}
	if total.Load() != tasks {
		t.Fatalf("ran %d tasks, want %d", total.Load(), tasks)
	}
}

// TestPoolReleaseOverflowPanics guards the misuse detector.
func TestPoolReleaseOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unreserved slots did not panic")
		}
	}()
	NewPool(2).Release(3)
}

// waitFor polls cond for up to 2 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
